//! Backtracking pattern matcher.
//!
//! Matching a [`Pattern`] against a filename yields typed [`Captures`]:
//! every `%s`/`%i`/`%a`/`*` field's text, and the assembled feed timestamp
//! from the `%Y%m%d…` components. Classification in `bistro-core` is
//! "standard regular-expression matching" (paper §3.2) — this module is
//! that engine, specialized to the pattern language (a tiny NFA with
//! greedy, backtracking variable-length fields).

use crate::ast::{Elem, Pattern, TsPart};
use bistro_base::time::Calendar;
use bistro_base::TimePoint;

/// The typed value of one captured field.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum CaptureValue {
    /// `%s` capture.
    Str(String),
    /// `*` capture (may be empty).
    Any(String),
    /// `%i` capture, with its parsed value.
    Int(u64),
    /// `%a` capture.
    Alpha(String),
    /// A timestamp component, with its parsed value.
    Ts(TsPart, u32),
}

/// One captured field.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Capture {
    /// Byte offset of the capture in the matched filename.
    pub start: usize,
    /// The captured text.
    pub text: String,
    /// The typed value.
    pub value: CaptureValue,
}

/// All captures from one successful match, in pattern order.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct Captures {
    caps: Vec<Capture>,
}

impl Captures {
    /// All captures in pattern order.
    pub fn all(&self) -> &[Capture] {
        &self.caps
    }

    /// Number of captures.
    pub fn len(&self) -> usize {
        self.caps.len()
    }

    /// True if no fields were captured (purely literal pattern).
    pub fn is_empty(&self) -> bool {
        self.caps.is_empty()
    }

    /// The first `%i` capture's value.
    pub fn first_int(&self) -> Option<u64> {
        self.caps.iter().find_map(|c| match &c.value {
            CaptureValue::Int(v) => Some(*v),
            _ => None,
        })
    }

    /// The first `%s` capture's text.
    pub fn first_str(&self) -> Option<&str> {
        self.caps.iter().find_map(|c| match &c.value {
            CaptureValue::Str(_) => Some(c.text.as_str()),
            _ => None,
        })
    }

    /// The text of the n-th capture (0-based, counting every field kind).
    pub fn text(&self, n: usize) -> Option<&str> {
        self.caps.get(n).map(|c| c.text.as_str())
    }

    /// The value of a specific timestamp component, if captured.
    pub fn ts_part(&self, part: TsPart) -> Option<u32> {
        self.caps.iter().find_map(|c| match c.value {
            CaptureValue::Ts(p, v) if p == part => Some(v),
            _ => None,
        })
    }

    /// Assemble the captured timestamp components into a [`TimePoint`].
    ///
    /// Requires a year (`%Y` or `%y`; two-digit years 70-99 map to 19xx,
    /// 00-69 to 20xx). Missing month/day default to 1; missing
    /// hour/minute/second default to 0. Returns `None` when no year was
    /// captured or the assembled date is invalid (e.g. Feb 30).
    pub fn timestamp(&self) -> Option<TimePoint> {
        let year = match (self.ts_part(TsPart::Year4), self.ts_part(TsPart::Year2)) {
            (Some(y), _) => y,
            (None, Some(y2)) => {
                if y2 >= 70 {
                    1900 + y2
                } else {
                    2000 + y2
                }
            }
            (None, None) => return None,
        };
        let cal = Calendar {
            year,
            month: self.ts_part(TsPart::Month).unwrap_or(1),
            day: self.ts_part(TsPart::Day).unwrap_or(1),
            hour: self.ts_part(TsPart::Hour).unwrap_or(0),
            minute: self.ts_part(TsPart::Minute).unwrap_or(0),
            second: self.ts_part(TsPart::Second).unwrap_or(0),
        };
        cal.to_timepoint()
    }
}

fn ts_in_range(part: TsPart, v: u32) -> bool {
    match part {
        TsPart::Year4 => (1000..=9999).contains(&v),
        TsPart::Year2 => v <= 99,
        TsPart::Month => (1..=12).contains(&v),
        TsPart::Day => (1..=31).contains(&v),
        TsPart::Hour => v <= 23,
        TsPart::Minute | TsPart::Second => v <= 59,
    }
}

/// Matcher state: recursive descent with backtracking on the
/// variable-length fields.
struct MatchState<'a> {
    elems: &'a [Elem],
    input: &'a str,
    caps: Vec<Capture>,
    /// Failure memo: `failed[elem_idx * (len+1) + pos]` — turns the
    /// worst-case exponential backtracking of stacked wildcards into
    /// O(elems × len²).
    failed: Vec<bool>,
}

impl<'a> MatchState<'a> {
    fn run(&mut self, elem_idx: usize, pos: usize) -> bool {
        let memo_idx = elem_idx * (self.input.len() + 1) + pos;
        if self.failed[memo_idx] {
            return false;
        }
        let ok = self.run_inner(elem_idx, pos);
        if !ok {
            self.failed[memo_idx] = true;
        }
        ok
    }

    fn run_inner(&mut self, elem_idx: usize, pos: usize) -> bool {
        let Some(elem) = self.elems.get(elem_idx) else {
            return pos == self.input.len();
        };
        let rest = &self.input[pos..];
        match elem {
            Elem::Literal(lit) => {
                if rest.starts_with(lit.as_str()) {
                    self.run(elem_idx + 1, pos + lit.len())
                } else {
                    false
                }
            }
            Elem::Ts(part) => {
                let w = part.width();
                if rest.len() < w || !rest[..w].bytes().all(|b| b.is_ascii_digit()) {
                    return false;
                }
                let v: u32 = rest[..w].parse().unwrap();
                if !ts_in_range(*part, v) {
                    return false;
                }
                self.caps.push(Capture {
                    start: pos,
                    text: rest[..w].to_string(),
                    value: CaptureValue::Ts(*part, v),
                });
                if self.run(elem_idx + 1, pos + w) {
                    return true;
                }
                self.caps.pop();
                false
            }
            Elem::Int => self.var_field(
                elem_idx,
                pos,
                1,
                |b| b.is_ascii_digit(),
                |t| CaptureValue::Int(t.parse().unwrap_or(u64::MAX)),
            ),
            Elem::Alpha => self.var_field(
                elem_idx,
                pos,
                1,
                |b| b.is_ascii_alphabetic(),
                |t| CaptureValue::Alpha(t.to_string()),
            ),
            Elem::Str => self.var_field(
                elem_idx,
                pos,
                1,
                |b| b != b'/',
                |t| CaptureValue::Str(t.to_string()),
            ),
            Elem::Any => self.var_field(
                elem_idx,
                pos,
                0,
                |b| b != b'/',
                |t| CaptureValue::Any(t.to_string()),
            ),
        }
    }

    /// Match a variable-length field greedily (longest first), backtracking
    /// one byte at a time. `min_len` is 0 for `*`, 1 otherwise.
    fn var_field(
        &mut self,
        elem_idx: usize,
        pos: usize,
        min_len: usize,
        accept: impl Fn(u8) -> bool,
        mk: impl Fn(&str) -> CaptureValue,
    ) -> bool {
        let rest = &self.input.as_bytes()[pos..];
        let mut max = 0;
        while max < rest.len() && accept(rest[max]) {
            max += 1;
        }
        let mut len = max;
        loop {
            if len < min_len {
                return false;
            }
            // don't split a UTF-8 char
            if self.input.is_char_boundary(pos + len) {
                let text = &self.input[pos..pos + len];
                self.caps.push(Capture {
                    start: pos,
                    text: text.to_string(),
                    value: mk(text),
                });
                if self.run(elem_idx + 1, pos + len) {
                    return true;
                }
                self.caps.pop();
            }
            if len == 0 {
                return false;
            }
            len -= 1;
        }
    }
}

impl Pattern {
    /// Match this pattern against a filename, returning the typed
    /// captures on success.
    pub fn match_str(&self, name: &str) -> Option<Captures> {
        let mut st = MatchState {
            elems: self.elems(),
            input: name,
            caps: Vec::new(),
            failed: vec![false; (self.elems().len() + 1) * (name.len() + 1)],
        };
        if st.run(0, 0) {
            Some(Captures { caps: st.caps })
        } else {
            None
        }
    }

    /// True if the pattern matches the filename.
    pub fn is_match(&self, name: &str) -> bool {
        self.match_str(name).is_some()
    }
}

#[cfg(test)]
mod tests {

    use crate::ast::Pattern;

    fn p(s: &str) -> Pattern {
        Pattern::parse(s).unwrap()
    }

    #[test]
    fn literal_only() {
        assert!(p("exact.txt").is_match("exact.txt"));
        assert!(!p("exact.txt").is_match("exact.txt.gz"));
        assert!(!p("exact.txt").is_match("prefix_exact.txt"));
    }

    #[test]
    fn paper_memory_pattern() {
        let pat = p("MEMORY_poller%i_%Y%m%d.gz");
        for name in [
            "MEMORY_poller1_20100925.gz",
            "MEMORY_poller2_20100925.gz",
            "MEMORY_poller1_20100926.gz",
        ] {
            let caps = pat.match_str(name).expect(name);
            assert!(caps.timestamp().is_some());
        }
        // capital P: the paper's false-negative example must NOT match
        assert!(!pat.is_match("MEMORY_Poller1_20100926.gz"));
        let caps = pat.match_str("MEMORY_poller7_20101231.gz").unwrap();
        assert_eq!(caps.first_int(), Some(7));
        let ts = caps.timestamp().unwrap().to_calendar();
        assert_eq!((ts.year, ts.month, ts.day), (2010, 12, 31));
    }

    #[test]
    fn timestamp_range_validation() {
        let pat = p("f_%Y%m%d.csv");
        assert!(pat.is_match("f_20101231.csv"));
        assert!(!pat.is_match("f_20101301.csv")); // month 13
        assert!(!pat.is_match("f_20100900.csv")); // day 00
        let pat = p("f_%H%M.csv");
        assert!(pat.is_match("f_2359.csv"));
        assert!(!pat.is_match("f_2460.csv"));
    }

    #[test]
    fn feb_30_rejected_at_assembly() {
        let pat = p("f_%Y%m%d.csv");
        let caps = pat.match_str("f_20100230.csv").unwrap(); // matches lexically
        assert_eq!(caps.timestamp(), None); // but is not a real date
    }

    #[test]
    fn str_field_backtracks_over_literal() {
        let pat = p("MEMORY%s.%Y%m%d.gz");
        // %s must stop before the final ".20100925.gz"
        let caps = pat.match_str("MEMORY_POLLER1.20100925.gz").unwrap();
        assert_eq!(caps.first_str(), Some("_POLLER1"));
    }

    #[test]
    fn str_greedy_when_ambiguous() {
        let pat = p("a%sb");
        let caps = pat.match_str("axbxb").unwrap();
        assert_eq!(caps.first_str(), Some("xbx")); // greedy
    }

    #[test]
    fn any_matches_empty() {
        let pat = p("x*.csv");
        assert!(pat.is_match("x.csv"));
        assert!(pat.is_match("xABC.csv"));
        let pat = p("x%s.csv");
        assert!(!pat.is_match("x.csv")); // %s needs at least one char
    }

    #[test]
    fn str_does_not_cross_slash() {
        let pat = p("%s.csv");
        assert!(pat.is_match("file.csv"));
        assert!(!pat.is_match("dir/file.csv"));
        let pat = p("%Y/%m/%d/%s.csv");
        assert!(pat.is_match("2010/09/25/report.csv"));
        assert!(!pat.is_match("2010/09/25/sub/report.csv"));
    }

    #[test]
    fn int_alpha_fields() {
        let pat = p("CPU_POLL%i_%s.txt");
        let caps = pat.match_str("CPU_POLL2_201009251001.txt").unwrap();
        assert_eq!(caps.first_int(), Some(2));
        let pat = p("%a_%i.log");
        let caps = pat.match_str("alarms_42.log").unwrap();
        assert_eq!(caps.text(0), Some("alarms"));
        assert_eq!(caps.first_int(), Some(42));
        assert!(!pat.is_match("alarms7_42.log")); // %a can't eat digits
    }

    #[test]
    fn adjacent_int_and_timestamp() {
        // ALARMHISTORYpoller_idTS.gz from paper §2.1: integer directly
        // followed by a timestamp — backtracking must split them.
        let pat = p("ALARMHISTORY%i%Y%m%d%H%M.gz");
        let caps = pat.match_str("ALARMHISTORY17201012301530.gz").unwrap();
        assert_eq!(caps.first_int(), Some(17));
        let c = caps.timestamp().unwrap().to_calendar();
        assert_eq!(
            (c.year, c.month, c.day, c.hour, c.minute),
            (2010, 12, 30, 15, 30)
        );
    }

    #[test]
    fn two_digit_year_window() {
        let pat = p("f_%y%m%d.csv");
        let caps = pat.match_str("f_991231.csv").unwrap();
        assert_eq!(caps.timestamp().unwrap().to_calendar().year, 1999);
        let caps = pat.match_str("f_100925.csv").unwrap();
        assert_eq!(caps.timestamp().unwrap().to_calendar().year, 2010);
    }

    #[test]
    fn no_timestamp_fields_gives_none() {
        let pat = p("file_%i.csv");
        let caps = pat.match_str("file_3.csv").unwrap();
        assert_eq!(caps.timestamp(), None);
    }

    #[test]
    fn hour_only_defaults() {
        let pat = p("hourly_%Y%m%d_%H.csv");
        let caps = pat.match_str("hourly_20101230_07.csv").unwrap();
        let c = caps.timestamp().unwrap().to_calendar();
        assert_eq!((c.hour, c.minute, c.second), (7, 0, 0));
    }

    #[test]
    fn wildcard_false_positive_scenario() {
        // §2.1.3.2: replacing poller1 with * matches unrelated files
        let pat = p("*_%Y_%m_%d.csv.gz");
        assert!(pat.is_match("poller1_2010_12_30.csv.gz"));
        assert!(pat.is_match("totally_unrelated_2010_12_30.csv.gz"));
    }

    #[test]
    fn unicode_in_name() {
        let pat = p("%s.csv");
        let caps = pat.match_str("café_münchen.csv").unwrap();
        assert_eq!(caps.first_str(), Some("café_münchen"));
    }

    #[test]
    fn capture_offsets() {
        let pat = p("AB%iCD%s");
        let caps = pat.match_str("AB12CDxy").unwrap();
        assert_eq!(caps.all()[0].start, 2);
        assert_eq!(caps.all()[1].start, 6);
    }

    #[test]
    fn pathological_backtracking_terminates() {
        // many wildcards against a non-matching input
        let pat = p("*a*a*a*a*a!");
        assert!(!pat.is_match(&"a".repeat(40)));
    }
}
