//! Pattern similarity metrics.
//!
//! Paper §5.2 evaluates two ways of deciding whether an unmatched file is
//! a *false negative* for an existing feed:
//!
//! 1. **Byte edit distance** between the filename and the feed pattern —
//!    the strawman. The paper's counter-example: the file
//!    `TRAP_2010030817_UVIPTV-…-9234SEC_klpi.txt` is "intuitively highly
//!    similar" to pattern `TRAP__%Y%m%d_DCTAGN_klpi.txt`, yet has edit
//!    distance 51, "significantly exceeding the length of the common
//!    parts of the filename".
//! 2. **Generalized-pattern similarity** — Bistro's approach: generalize
//!    the unmatched file into a pattern, then compare *pattern to
//!    pattern* at the token level. Variable fields compare against
//!    variable fields of compatible type, so the enormous literal
//!    differences inside a `%s`-like field cost nothing.
//!
//! [`pattern_similarity`] implements (2) via Needleman-Wunsch alignment
//! over pattern elements; [`levenshtein`] implements (1).

use crate::ast::{Elem, Pattern};

/// Classic Levenshtein edit distance between two strings (bytes).
pub fn levenshtein(a: &str, b: &str) -> usize {
    let a = a.as_bytes();
    let b = b.as_bytes();
    if a.is_empty() {
        return b.len();
    }
    if b.is_empty() {
        return a.len();
    }
    let mut prev: Vec<usize> = (0..=b.len()).collect();
    let mut cur = vec![0usize; b.len() + 1];
    for (i, &ca) in a.iter().enumerate() {
        cur[0] = i + 1;
        for (j, &cb) in b.iter().enumerate() {
            let cost = usize::from(ca != cb);
            cur[j + 1] = (prev[j] + cost).min(prev[j + 1] + 1).min(cur[j] + 1);
        }
        std::mem::swap(&mut prev, &mut cur);
    }
    prev[b.len()]
}

/// Alignment atoms: pattern elements exploded so literals compare
/// per-token rather than per-element (a long literal is several atoms).
#[derive(Debug, Clone, PartialEq)]
enum Atom<'a> {
    Lit(&'a str),
    Str,
    Any,
    Int,
    Alpha,
    Ts(char),
}

fn atoms(p: &Pattern) -> Vec<Atom<'_>> {
    let mut out = Vec::new();
    for e in p.elems() {
        match e {
            Elem::Literal(s) => {
                // split literals at character-class boundaries so e.g.
                // "DCTAGN" and "UVIPTV" align token-to-token
                let mut start = 0;
                let bytes = s.as_bytes();
                let class = |b: u8| {
                    if b.is_ascii_alphabetic() {
                        0u8
                    } else if b.is_ascii_digit() {
                        1
                    } else {
                        2
                    }
                };
                for i in 1..=bytes.len() {
                    let boundary = i == bytes.len()
                        || class(bytes[i]) != class(bytes[i - 1])
                        || class(bytes[i]) == 2; // each punct char separate
                    if boundary {
                        out.push(Atom::Lit(&s[start..i]));
                        start = i;
                    }
                }
            }
            Elem::Str => out.push(Atom::Str),
            Elem::Any => out.push(Atom::Any),
            Elem::Int => out.push(Atom::Int),
            Elem::Alpha => out.push(Atom::Alpha),
            Elem::Ts(part) => out.push(Atom::Ts(part.spec_char())),
        }
    }
    out
}

/// Score for aligning two atoms (higher is better).
fn atom_score(a: &Atom<'_>, b: &Atom<'_>) -> f64 {
    match (a, b) {
        (Atom::Lit(x), Atom::Lit(y)) => {
            if x == y {
                2.0
            } else if x.chars().next().map(|c| c.is_ascii_alphanumeric())
                == y.chars().next().map(|c| c.is_ascii_alphanumeric())
            {
                // same class, different text: weak positive if close in
                // edit distance, else mild negative
                let d = levenshtein(x, y);
                let max_len = x.len().max(y.len());
                if d * 2 <= max_len {
                    0.5
                } else {
                    -0.25
                }
            } else {
                -0.5
            }
        }
        (Atom::Ts(x), Atom::Ts(y)) => {
            if x == y {
                2.0
            } else {
                0.5 // both timestamps, different component
            }
        }
        (Atom::Int, Atom::Int) | (Atom::Alpha, Atom::Alpha) => 2.0,
        (Atom::Str, Atom::Str)
        | (Atom::Any, Atom::Any)
        | (Atom::Str, Atom::Any)
        | (Atom::Any, Atom::Str) => 2.0,
        // a variable string field happily absorbs any literal or field
        (Atom::Str | Atom::Any, _) | (_, Atom::Str | Atom::Any) => 0.75,
        // int fields align with digit literals, alpha fields with alpha
        (Atom::Int, Atom::Lit(l)) | (Atom::Lit(l), Atom::Int) => {
            if l.bytes().all(|b| b.is_ascii_digit()) {
                1.5
            } else {
                -0.5
            }
        }
        (Atom::Alpha, Atom::Lit(l)) | (Atom::Lit(l), Atom::Alpha) => {
            if l.bytes().all(|b| b.is_ascii_alphabetic()) {
                1.5
            } else {
                -0.5
            }
        }
        (Atom::Ts(_), Atom::Lit(l)) | (Atom::Lit(l), Atom::Ts(_)) => {
            if l.bytes().all(|b| b.is_ascii_digit()) {
                1.0
            } else {
                -0.5
            }
        }
        (Atom::Int, Atom::Ts(_)) | (Atom::Ts(_), Atom::Int) => 1.0,
        (Atom::Alpha, Atom::Int) | (Atom::Int, Atom::Alpha) => -0.5,
        (Atom::Alpha, Atom::Ts(_)) | (Atom::Ts(_), Atom::Alpha) => -0.5,
    }
}

const GAP_PENALTY: f64 = -0.25;

/// Similarity between two patterns in `[0, 1]`.
///
/// The score is a Needleman-Wunsch global alignment normalized by the
/// self-alignment score of the *shorter* pattern, making it a containment
/// measure: a short feed pattern whose anchor tokens all appear, in
/// order, inside a much longer filename still scores high — exactly the
/// paper's TRAP example, where byte edit distance (51) explodes but the
/// structural overlap is obvious. 1.0 means perfect token-for-token
/// alignment; values above ~0.5 indicate strong structural similarity
/// (the threshold the feed analyzer uses for false-negative candidates).
#[allow(clippy::needless_range_loop)] // index-based DP reads clearer here
pub fn pattern_similarity(a: &Pattern, b: &Pattern) -> f64 {
    let aa = atoms(a);
    let bb = atoms(b);
    if aa.is_empty() || bb.is_empty() {
        return if aa.is_empty() && bb.is_empty() {
            1.0
        } else {
            0.0
        };
    }

    // Needleman-Wunsch global alignment (index-based DP reads clearer
    // than iterator chains here)
    let n = aa.len();
    let m = bb.len();
    let mut dp = vec![vec![0f64; m + 1]; n + 1];
    for i in 1..=n {
        dp[i][0] = i as f64 * GAP_PENALTY;
    }
    for j in 1..=m {
        dp[0][j] = j as f64 * GAP_PENALTY;
    }
    for i in 1..=n {
        for j in 1..=m {
            let diag = dp[i - 1][j - 1] + atom_score(&aa[i - 1], &bb[j - 1]);
            let up = dp[i - 1][j] + GAP_PENALTY;
            let left = dp[i][j - 1] + GAP_PENALTY;
            dp[i][j] = diag.max(up).max(left);
        }
    }
    let raw = dp[n][m];
    // normalize by the self-alignment score of the shorter side (every
    // atom scores 2.0 against itself)
    let best = 2.0 * n.min(m) as f64;
    (raw / best).clamp(0.0, 1.0)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generalize::generalize;

    fn p(s: &str) -> Pattern {
        Pattern::parse(s).unwrap()
    }

    #[test]
    fn levenshtein_basics() {
        assert_eq!(levenshtein("", ""), 0);
        assert_eq!(levenshtein("abc", "abc"), 0);
        assert_eq!(levenshtein("abc", "abd"), 1);
        assert_eq!(levenshtein("abc", ""), 3);
        assert_eq!(levenshtein("kitten", "sitting"), 3);
    }

    #[test]
    fn paper_trap_example_edit_distance_is_huge() {
        // The paper reports edit distance 51 between the filename and the
        // pattern text; we verify the distance is of that order — far
        // beyond any sane threshold.
        let pattern_text = "TRAP__%Y%m%d_DCTAGN_klpi.txt";
        let file = "TRAP_2010030817_UVIPTV-PER-BAN-DSPS-IPTV_MOM-rcsntxsqlcv122_9234SEC_klpi.txt";
        let d = levenshtein(pattern_text, file);
        assert!(d >= 45, "expected a huge distance, got {d}");
    }

    #[test]
    fn paper_trap_example_pattern_similarity_is_high() {
        // Bistro's approach: generalize the file, compare patterns.
        let feed = p("TRAP__%Y%m%d_DCTAGN_klpi.txt");
        let file_pat = generalize(
            "TRAP_2010030817_UVIPTV-PER-BAN-DSPS-IPTV_MOM-rcsntxsqlcv122_9234SEC_klpi.txt",
        )
        .to_pattern();
        let sim = pattern_similarity(&feed, &file_pat);
        assert!(
            sim > 0.35,
            "generalized similarity should be substantial, got {sim:.3}"
        );
        // …and far higher than the similarity to an unrelated feed
        let unrelated = p("MEMORY_poller%i_%Y%m%d.gz");
        let sim_unrelated = pattern_similarity(&unrelated, &file_pat);
        assert!(
            sim > sim_unrelated + 0.15,
            "TRAP sim {sim:.3} vs unrelated {sim_unrelated:.3}"
        );
    }

    #[test]
    fn identical_patterns_score_one() {
        let a = p("MEMORY_poller%i_%Y%m%d.gz");
        assert!((pattern_similarity(&a, &a) - 1.0).abs() < 1e-9);
    }

    #[test]
    fn capitalization_drift_detected() {
        // §5.2: "poller" → "Poller" must still look highly similar.
        let feed = p("MEMORY_poller%i_%Y%m%d.gz");
        let drifted = generalize("MEMORY_Poller1_20100926.gz").to_pattern();
        let sim = pattern_similarity(&feed, &drifted);
        assert!(sim > 0.7, "got {sim:.3}");
    }

    #[test]
    fn format_migration_detected() {
        // §2.1.3.1: poller1_YYYY_MM_DD.csv.gz migrates to
        // YYYY/MM/DD/poller1_version.csv.bz2 — related but weaker.
        let feed = p("poller1_%Y_%m_%d.csv.gz");
        let new = generalize("poller1_2010_12_30.csv.bz2").to_pattern();
        let sim = pattern_similarity(&feed, &new);
        assert!(sim > 0.6, "got {sim:.3}");
    }

    #[test]
    fn unrelated_patterns_score_low() {
        let a = p("MEMORY_poller%i_%Y%m%d.gz");
        let b = p("completely/different/thing.log");
        assert!(pattern_similarity(&a, &b) < 0.3);
    }

    #[test]
    fn symmetry() {
        let a = p("MEMORY_poller%i_%Y%m%d.gz");
        let b = p("MEMORY_Poller%i_%Y%m%d.bz2");
        let ab = pattern_similarity(&a, &b);
        let ba = pattern_similarity(&b, &a);
        assert!((ab - ba).abs() < 1e-9);
    }

    #[test]
    fn similarity_ranks_candidates() {
        // an unmatched file should rank its true feed highest among a set
        let feeds = [
            p("MEMORY_poller%i_%Y%m%d.gz"),
            p("CPU_POLL%i_%Y%m%d%H%M.txt"),
            p("BPS_%a_%Y%m%d.csv"),
        ];
        let drifted = generalize("MEMORY_Poller3_20101230.gz").to_pattern();
        let sims: Vec<f64> = feeds
            .iter()
            .map(|f| pattern_similarity(f, &drifted))
            .collect();
        assert!(sims[0] > sims[1] && sims[0] > sims[2], "sims = {sims:?}");
    }
}
