//! Filename tokenization.
//!
//! The feed analyzer's first stage (paper §5.1): split a filename into a
//! sequence of tokens at character-class boundaries. "General problem of
//! string tokenization is very hard given that some filenames use
//! fixed-length fields of unknown length instead of traditional
//! separators" — the heuristics here are the ones the paper lists:
//! alphabetic/numeric transitions, punctuation separators, and
//! recognition of common field formats (dates, numbers, version strings,
//! IPv4 addresses).

use std::fmt;

/// Character class of a token.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum TokenKind {
    /// A run of ASCII letters.
    Alpha,
    /// A run of ASCII digits.
    Digits,
    /// A single punctuation / separator character.
    Punct,
}

/// One token of a filename.
#[derive(Clone, Debug, PartialEq, Eq, Hash)]
pub struct Token {
    /// Character class.
    pub kind: TokenKind,
    /// The matched text.
    pub text: String,
}

impl Token {
    fn new(kind: TokenKind, text: &str) -> Token {
        Token {
            kind,
            text: text.to_string(),
        }
    }
}

impl fmt::Display for Token {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.text)
    }
}

/// Tokenize a filename at character-class boundaries.
///
/// Every byte of the input appears in exactly one token, in order, so
/// `tokens.concat() == name`.
pub fn tokenize(name: &str) -> Vec<Token> {
    let mut out = Vec::new();
    let bytes = name.as_bytes();
    let mut i = 0;
    while i < bytes.len() {
        let b = bytes[i];
        if b.is_ascii_alphabetic() {
            let start = i;
            while i < bytes.len() && bytes[i].is_ascii_alphabetic() {
                i += 1;
            }
            out.push(Token::new(TokenKind::Alpha, &name[start..i]));
        } else if b.is_ascii_digit() {
            let start = i;
            while i < bytes.len() && bytes[i].is_ascii_digit() {
                i += 1;
            }
            out.push(Token::new(TokenKind::Digits, &name[start..i]));
        } else {
            // one punctuation char per token; multi-byte UTF-8 chars are
            // kept whole
            let ch_len = name[i..].chars().next().map(char::len_utf8).unwrap_or(1);
            out.push(Token::new(TokenKind::Punct, &name[i..i + ch_len]));
            i += ch_len;
        }
    }
    out
}

/// The timestamp layouts the analyzer recognizes inside a single digit
/// run, in decreasing order of digit count.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum DigitsFormat {
    /// `YYYYMMDDHHMMSS` (14 digits).
    YmdHms,
    /// `YYYYMMDDHHMM` (12 digits).
    YmdHm,
    /// `YYYYMMDDHH` (10 digits).
    YmdH,
    /// `YYYYMMDD` (8 digits).
    Ymd,
    /// `YYYY` alone (4 digits in a plausible year range).
    Year,
    /// A plain integer.
    Int,
}

/// Classify a digit run, recognizing embedded timestamps.
///
/// A run is only classified as a timestamp if its components are in range
/// (month 01-12, day 01-31, hour 00-23, minute/second 00-59) and the year
/// falls in 1970..=2099 — the pragmatic window for feed data.
pub fn classify_digits(digits: &str) -> DigitsFormat {
    fn num(s: &str) -> u32 {
        s.parse().unwrap_or(9999)
    }
    let plausible_year = |y: u32| (1970..=2099).contains(&y);
    let plausible_md = |m: u32, d: u32| (1..=12).contains(&m) && (1..=31).contains(&d);

    match digits.len() {
        14 => {
            let (y, m, d, h, mi, s) = (
                num(&digits[0..4]),
                num(&digits[4..6]),
                num(&digits[6..8]),
                num(&digits[8..10]),
                num(&digits[10..12]),
                num(&digits[12..14]),
            );
            if plausible_year(y) && plausible_md(m, d) && h < 24 && mi < 60 && s < 60 {
                return DigitsFormat::YmdHms;
            }
            DigitsFormat::Int
        }
        12 => {
            let (y, m, d, h, mi) = (
                num(&digits[0..4]),
                num(&digits[4..6]),
                num(&digits[6..8]),
                num(&digits[8..10]),
                num(&digits[10..12]),
            );
            if plausible_year(y) && plausible_md(m, d) && h < 24 && mi < 60 {
                return DigitsFormat::YmdHm;
            }
            DigitsFormat::Int
        }
        10 => {
            let (y, m, d, h) = (
                num(&digits[0..4]),
                num(&digits[4..6]),
                num(&digits[6..8]),
                num(&digits[8..10]),
            );
            if plausible_year(y) && plausible_md(m, d) && h < 24 {
                return DigitsFormat::YmdH;
            }
            DigitsFormat::Int
        }
        8 => {
            let (y, m, d) = (num(&digits[0..4]), num(&digits[4..6]), num(&digits[6..8]));
            if plausible_year(y) && plausible_md(m, d) {
                return DigitsFormat::Ymd;
            }
            DigitsFormat::Int
        }
        4 => {
            if plausible_year(num(digits)) {
                return DigitsFormat::Year;
            }
            DigitsFormat::Int
        }
        _ => DigitsFormat::Int,
    }
}

/// Recognize a dotted IPv4 address starting at token index `i`.
/// Returns the number of tokens consumed (7: d.d.d.d) if present.
pub fn ipv4_at(tokens: &[Token], i: usize) -> Option<usize> {
    if i + 7 > tokens.len() {
        return None;
    }
    for k in 0..7 {
        let t = &tokens[i + k];
        if k % 2 == 0 {
            if t.kind != TokenKind::Digits || t.text.len() > 3 {
                return None;
            }
            let v: u32 = t.text.parse().ok()?;
            if v > 255 {
                return None;
            }
        } else if t.kind != TokenKind::Punct || t.text != "." {
            return None;
        }
    }
    Some(7)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tokenize_paper_example() {
        let toks = tokenize("MEMORY_POLLER1_2010092504_51.csv.gz");
        let texts: Vec<_> = toks.iter().map(|t| t.text.as_str()).collect();
        assert_eq!(
            texts,
            vec![
                "MEMORY",
                "_",
                "POLLER",
                "1",
                "_",
                "2010092504",
                "_",
                "51",
                ".",
                "csv",
                ".",
                "gz"
            ]
        );
        assert_eq!(toks[0].kind, TokenKind::Alpha);
        assert_eq!(toks[3].kind, TokenKind::Digits);
        assert_eq!(toks[4].kind, TokenKind::Punct);
    }

    #[test]
    fn tokenize_covers_input() {
        for name in [
            "",
            "abc",
            "123",
            "___",
            "CPU_POLL2_201009251001.txt",
            "Poller1_router_a_2010_12_30_00.csv,gz",
            "TRAP_2010030817_UVIPTV-PER-BAN-DSPS-IPTV_MOM-rcsntxsqlcv122_9234SEC_klpi.txt",
        ] {
            let toks = tokenize(name);
            let joined: String = toks.iter().map(|t| t.text.as_str()).collect();
            assert_eq!(joined, name);
        }
    }

    #[test]
    fn tokenize_handles_utf8_punct() {
        let toks = tokenize("a→b");
        assert_eq!(toks.len(), 3);
        assert_eq!(toks[1].text, "→");
    }

    #[test]
    fn classify_timestamps() {
        assert_eq!(classify_digits("20100925"), DigitsFormat::Ymd);
        assert_eq!(classify_digits("2010092504"), DigitsFormat::YmdH);
        assert_eq!(classify_digits("201009250502"), DigitsFormat::YmdHm);
        assert_eq!(classify_digits("20100925050259"), DigitsFormat::YmdHms);
        assert_eq!(classify_digits("2010"), DigitsFormat::Year);
    }

    #[test]
    fn classify_rejects_implausible() {
        assert_eq!(classify_digits("99999999"), DigitsFormat::Int); // month 99
        assert_eq!(classify_digits("20101340"), DigitsFormat::Int); // month 13
        assert_eq!(classify_digits("2010092575"), DigitsFormat::Int); // hour 75
        assert_eq!(classify_digits("1234"), DigitsFormat::Int); // year 1234
        assert_eq!(classify_digits("51"), DigitsFormat::Int);
        assert_eq!(classify_digits("123"), DigitsFormat::Int);
    }

    #[test]
    fn ipv4_recognition() {
        let toks = tokenize("log_192.168.1.254_x");
        // tokens: log _ 192 . 168 . 1 . 254 _ x → ip starts at index 2
        assert_eq!(ipv4_at(&toks, 2), Some(7));
        assert_eq!(ipv4_at(&toks, 0), None);
        let toks = tokenize("999.1.1.1");
        assert_eq!(ipv4_at(&toks, 0), None); // 999 > 255
        let toks = tokenize("1.2.3");
        assert_eq!(ipv4_at(&toks, 0), None); // too short
    }
}
