//! Pattern language AST and parser.
//!
//! Grammar (paper §3.1, "printf-inspired syntax instead of more
//! traditional regular expressions"):
//!
//! | construct | meaning |
//! |---|---|
//! | `%s` | arbitrary non-empty string, not crossing `/` |
//! | `*`  | arbitrary possibly-empty string, not crossing `/` (wildcard of §2.1.3.2) |
//! | `%i` | integer (one or more digits) |
//! | `%a` | alphabetic run (one or more letters) |
//! | `%Y` | 4-digit year |
//! | `%y` | 2-digit year (70-99 ⇒ 19xx, else 20xx) |
//! | `%m` `%d` `%H` `%M` `%S` | 2-digit month / day / hour / minute / second |
//! | `%%` | a literal `%` |
//! | `%*` | a literal `*` |
//! | `/`  | directory separator (patterns may describe hierarchies, e.g. `%Y/%m/%d/poller%i.csv`) |
//! | anything else | literal text |
//!
//! The payoff over regexes is that fields carry *semantics*: the matcher
//! assembles `%Y%m%d…` captures into a feed timestamp, which drives
//! normalization, batching and retention.

use std::fmt;

/// A timestamp component specifier.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum TsPart {
    /// `%Y` — 4-digit year.
    Year4,
    /// `%y` — 2-digit year.
    Year2,
    /// `%m` — 2-digit month.
    Month,
    /// `%d` — 2-digit day.
    Day,
    /// `%H` — 2-digit hour.
    Hour,
    /// `%M` — 2-digit minute.
    Minute,
    /// `%S` — 2-digit second.
    Second,
}

impl TsPart {
    /// The number of digits this component occupies.
    pub fn width(self) -> usize {
        match self {
            TsPart::Year4 => 4,
            _ => 2,
        }
    }

    /// The `%X` spelling.
    pub fn spec_char(self) -> char {
        match self {
            TsPart::Year4 => 'Y',
            TsPart::Year2 => 'y',
            TsPart::Month => 'm',
            TsPart::Day => 'd',
            TsPart::Hour => 'H',
            TsPart::Minute => 'M',
            TsPart::Second => 'S',
        }
    }
}

/// One element of a parsed pattern.
#[derive(Clone, Debug, PartialEq, Eq, Hash)]
pub enum Elem {
    /// Literal text (never empty; `%%` parses into a `"%"` literal).
    Literal(String),
    /// `%s` — non-empty string field.
    Str,
    /// `*` — possibly-empty wildcard.
    Any,
    /// `%i` — integer field.
    Int,
    /// `%a` — alphabetic field.
    Alpha,
    /// A timestamp component.
    Ts(TsPart),
}

/// Errors from [`Pattern::parse`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum PatternError {
    /// The pattern ended with a bare `%`.
    TrailingPercent,
    /// `%x` with an unknown specifier character.
    UnknownSpecifier(char),
    /// The pattern was empty.
    Empty,
    /// A timestamp component appears twice (e.g. two `%Y`).
    DuplicateTsPart(TsPart),
}

impl fmt::Display for PatternError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PatternError::TrailingPercent => write!(f, "pattern ends with a bare '%'"),
            PatternError::UnknownSpecifier(c) => write!(f, "unknown specifier '%{c}'"),
            PatternError::Empty => write!(f, "empty pattern"),
            PatternError::DuplicateTsPart(p) => {
                write!(f, "duplicate timestamp component '%{}'", p.spec_char())
            }
        }
    }
}

impl std::error::Error for PatternError {}

/// A parsed, immutable feed filename pattern.
#[derive(Clone, Debug, PartialEq, Eq, Hash)]
pub struct Pattern {
    elems: Vec<Elem>,
    text: String,
}

impl Pattern {
    /// Parse a pattern from its textual form.
    pub fn parse(text: &str) -> Result<Pattern, PatternError> {
        if text.is_empty() {
            return Err(PatternError::Empty);
        }
        let mut elems: Vec<Elem> = Vec::new();
        let mut lit = String::new();
        let mut seen_ts: Vec<TsPart> = Vec::new();
        let mut chars = text.chars();

        let flush = |elems: &mut Vec<Elem>, lit: &mut String| {
            if !lit.is_empty() {
                // merge adjacent literals
                if let Some(Elem::Literal(prev)) = elems.last_mut() {
                    prev.push_str(lit);
                } else {
                    elems.push(Elem::Literal(std::mem::take(lit)));
                }
                lit.clear();
            }
        };

        while let Some(c) = chars.next() {
            match c {
                '%' => {
                    let spec = chars.next().ok_or(PatternError::TrailingPercent)?;
                    match spec {
                        '%' => lit.push('%'),
                        '*' => lit.push('*'),
                        's' => {
                            flush(&mut elems, &mut lit);
                            elems.push(Elem::Str);
                        }
                        'i' => {
                            flush(&mut elems, &mut lit);
                            elems.push(Elem::Int);
                        }
                        'a' => {
                            flush(&mut elems, &mut lit);
                            elems.push(Elem::Alpha);
                        }
                        'Y' | 'y' | 'm' | 'd' | 'H' | 'M' | 'S' => {
                            let part = match spec {
                                'Y' => TsPart::Year4,
                                'y' => TsPart::Year2,
                                'm' => TsPart::Month,
                                'd' => TsPart::Day,
                                'H' => TsPart::Hour,
                                'M' => TsPart::Minute,
                                _ => TsPart::Second,
                            };
                            if seen_ts.contains(&part)
                                || (part == TsPart::Year4 && seen_ts.contains(&TsPart::Year2))
                                || (part == TsPart::Year2 && seen_ts.contains(&TsPart::Year4))
                            {
                                return Err(PatternError::DuplicateTsPart(part));
                            }
                            seen_ts.push(part);
                            flush(&mut elems, &mut lit);
                            elems.push(Elem::Ts(part));
                        }
                        other => return Err(PatternError::UnknownSpecifier(other)),
                    }
                }
                '*' => {
                    flush(&mut elems, &mut lit);
                    elems.push(Elem::Any);
                }
                other => lit.push(other),
            }
        }
        flush(&mut elems, &mut lit);
        Ok(Pattern {
            elems,
            text: text.to_string(),
        })
    }

    /// The pattern's elements.
    pub fn elems(&self) -> &[Elem] {
        &self.elems
    }

    /// The original textual form.
    pub fn text(&self) -> &str {
        &self.text
    }

    /// True if the pattern contains any timestamp component.
    pub fn has_timestamp(&self) -> bool {
        self.elems.iter().any(|e| matches!(e, Elem::Ts(_)))
    }

    /// True if the pattern describes a directory hierarchy (contains `/`).
    pub fn is_hierarchical(&self) -> bool {
        self.elems.iter().any(|e| match e {
            Elem::Literal(s) => s.contains('/'),
            _ => false,
        })
    }

    /// A specificity score: the number of literal characters plus 2 per
    /// typed field, minus 3 per unbounded wildcard. Used by the classifier
    /// to prefer the most specific feed when several patterns match
    /// (§2.1.3.2's over-generic wildcard problem) and by the analyzer to
    /// rank suggested definitions.
    pub fn specificity(&self) -> i64 {
        let mut score: i64 = 0;
        for e in &self.elems {
            match e {
                Elem::Literal(s) => score += s.chars().count() as i64 * 2,
                Elem::Ts(_) => score += 3,
                Elem::Int | Elem::Alpha => score += 2,
                Elem::Str => score -= 1,
                Elem::Any => score -= 3,
            }
        }
        score
    }

    /// The leading literal prefix of the pattern (empty if it starts with
    /// a field). The classifier uses this for first-byte dispatch.
    pub fn literal_prefix(&self) -> &str {
        match self.elems.first() {
            Some(Elem::Literal(s)) => s,
            _ => "",
        }
    }
}

impl fmt::Display for Pattern {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.text)
    }
}

impl std::str::FromStr for Pattern {
    type Err = PatternError;
    fn from_str(s: &str) -> Result<Self, Self::Err> {
        Pattern::parse(s)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_paper_patterns() {
        let p = Pattern::parse("MEMORY%s.%Y%m%d.gz").unwrap();
        assert_eq!(
            p.elems(),
            &[
                Elem::Literal("MEMORY".into()),
                Elem::Str,
                Elem::Literal(".".into()),
                Elem::Ts(TsPart::Year4),
                Elem::Ts(TsPart::Month),
                Elem::Ts(TsPart::Day),
                Elem::Literal(".gz".into()),
            ]
        );
        assert!(p.has_timestamp());

        let p = Pattern::parse("MEMORY_poller%i_%Y%m%d.gz").unwrap();
        assert!(p.elems().contains(&Elem::Int));

        let p = Pattern::parse("TRAP__%Y%m%d_DCTAGN_klpi.txt").unwrap();
        assert_eq!(p.literal_prefix(), "TRAP__");
    }

    #[test]
    fn parse_hierarchical() {
        let p = Pattern::parse("%Y/%m/%d/poller%i_soft_%s.csv.bz2").unwrap();
        assert!(p.is_hierarchical());
    }

    #[test]
    fn parse_wildcard_and_escape() {
        let p = Pattern::parse("*_%Y%m%d.csv.gz").unwrap();
        assert_eq!(p.elems()[0], Elem::Any);
        let p = Pattern::parse("100%%_done_%i").unwrap();
        assert_eq!(p.elems()[0], Elem::Literal("100%_done_".into()));
    }

    #[test]
    fn parse_errors() {
        assert_eq!(Pattern::parse(""), Err(PatternError::Empty));
        assert_eq!(Pattern::parse("abc%"), Err(PatternError::TrailingPercent));
        assert_eq!(
            Pattern::parse("abc%z"),
            Err(PatternError::UnknownSpecifier('z'))
        );
        assert_eq!(
            Pattern::parse("%Y%m%Y"),
            Err(PatternError::DuplicateTsPart(TsPart::Year4))
        );
        assert_eq!(
            Pattern::parse("%Y_%y"),
            Err(PatternError::DuplicateTsPart(TsPart::Year2))
        );
    }

    #[test]
    fn adjacent_literals_merge() {
        let p = Pattern::parse("a%%b").unwrap();
        assert_eq!(p.elems(), &[Elem::Literal("a%b".into())]);
    }

    #[test]
    fn specificity_ordering() {
        let specific = Pattern::parse("MEMORY_poller%i_%Y%m%d.gz").unwrap();
        let generic = Pattern::parse("*_%Y%m%d.gz").unwrap();
        let very_generic = Pattern::parse("*").unwrap();
        assert!(specific.specificity() > generic.specificity());
        assert!(generic.specificity() > very_generic.specificity());
    }

    #[test]
    fn display_roundtrip() {
        for text in [
            "MEMORY%s.%Y%m%d.gz",
            "%Y/%m/%d/poller%i.csv",
            "*_x_%a_%i",
            "100%%_done",
        ] {
            let p = Pattern::parse(text).unwrap();
            assert_eq!(p.to_string(), text);
            // re-parsing the display form yields the same elements
            assert_eq!(Pattern::parse(&p.to_string()).unwrap().elems(), p.elems());
        }
    }
}
