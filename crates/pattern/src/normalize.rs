//! Filename normalization templates.
//!
//! Paper §3.1: "Often an application prefers to enforce a particular
//! organizational structure to all the files that belong to a data feed,
//! for example organize the files into daily directories … The Bistro
//! file normalizer takes knowledge of field semantics embedded in feed
//! patterns to drive the normalization process."
//!
//! A [`Template`] re-renders a matched file's captures into the staging
//! path the subscriber wants. Template specifiers:
//!
//! | spec | renders |
//! |---|---|
//! | `%Y %y %m %d %H %M %S` | the feed timestamp assembled from the match |
//! | `%f` | the original file name (final path component) |
//! | `%N` | the feed name |
//! | `%1`…`%9` | the n-th captured field's text (1-based, all field kinds) |
//! | `%%` | a literal `%` |

use crate::ast::TsPart;
use crate::matcher::Captures;
use bistro_base::time::Calendar;
use std::fmt;

/// One element of a parsed template.
#[derive(Clone, Debug, PartialEq, Eq)]
enum TElem {
    Literal(String),
    Ts(TsPart),
    OrigName,
    FeedName,
    CaptureRef(usize),
}

/// Errors from template parsing or rendering.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TemplateError {
    /// The template ended with a bare `%`.
    TrailingPercent,
    /// Unknown `%x` specifier.
    UnknownSpecifier(char),
    /// The template was empty.
    Empty,
    /// A `%n` capture reference exceeded the available captures.
    CaptureOutOfRange(usize),
    /// The template uses a timestamp but the match captured no year.
    NoTimestamp,
}

impl fmt::Display for TemplateError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TemplateError::TrailingPercent => write!(f, "template ends with a bare '%'"),
            TemplateError::UnknownSpecifier(c) => write!(f, "unknown template specifier '%{c}'"),
            TemplateError::Empty => write!(f, "empty template"),
            TemplateError::CaptureOutOfRange(n) => {
                write!(f, "capture reference %{n} exceeds available captures")
            }
            TemplateError::NoTimestamp => {
                write!(
                    f,
                    "template uses timestamp fields but match has no timestamp"
                )
            }
        }
    }
}

impl std::error::Error for TemplateError {}

/// A parsed normalization template.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Template {
    elems: Vec<TElem>,
    text: String,
}

impl Template {
    /// Parse a template from its textual form.
    pub fn parse(text: &str) -> Result<Template, TemplateError> {
        if text.is_empty() {
            return Err(TemplateError::Empty);
        }
        let mut elems = Vec::new();
        let mut lit = String::new();
        let mut chars = text.chars();
        let flush = |elems: &mut Vec<TElem>, lit: &mut String| {
            if !lit.is_empty() {
                elems.push(TElem::Literal(std::mem::take(lit)));
            }
        };
        while let Some(c) = chars.next() {
            if c != '%' {
                lit.push(c);
                continue;
            }
            let spec = chars.next().ok_or(TemplateError::TrailingPercent)?;
            match spec {
                '%' => lit.push('%'),
                'Y' => {
                    flush(&mut elems, &mut lit);
                    elems.push(TElem::Ts(TsPart::Year4));
                }
                'y' => {
                    flush(&mut elems, &mut lit);
                    elems.push(TElem::Ts(TsPart::Year2));
                }
                'm' => {
                    flush(&mut elems, &mut lit);
                    elems.push(TElem::Ts(TsPart::Month));
                }
                'd' => {
                    flush(&mut elems, &mut lit);
                    elems.push(TElem::Ts(TsPart::Day));
                }
                'H' => {
                    flush(&mut elems, &mut lit);
                    elems.push(TElem::Ts(TsPart::Hour));
                }
                'M' => {
                    flush(&mut elems, &mut lit);
                    elems.push(TElem::Ts(TsPart::Minute));
                }
                'S' => {
                    flush(&mut elems, &mut lit);
                    elems.push(TElem::Ts(TsPart::Second));
                }
                'f' => {
                    flush(&mut elems, &mut lit);
                    elems.push(TElem::OrigName);
                }
                'N' => {
                    flush(&mut elems, &mut lit);
                    elems.push(TElem::FeedName);
                }
                d @ '1'..='9' => {
                    flush(&mut elems, &mut lit);
                    elems.push(TElem::CaptureRef(d as usize - '1' as usize));
                }
                other => return Err(TemplateError::UnknownSpecifier(other)),
            }
        }
        flush(&mut elems, &mut lit);
        Ok(Template {
            elems,
            text: text.to_string(),
        })
    }

    /// True if the template references timestamp components.
    pub fn uses_timestamp(&self) -> bool {
        self.elems.iter().any(|e| matches!(e, TElem::Ts(_)))
    }

    /// The original textual form.
    pub fn text(&self) -> &str {
        &self.text
    }

    /// Render the staging path for a matched file.
    ///
    /// * `caps` — the captures from the feed pattern match.
    /// * `orig_name` — the original file name (final component).
    /// * `feed_name` — the feed's name.
    pub fn render(
        &self,
        caps: &Captures,
        orig_name: &str,
        feed_name: &str,
    ) -> Result<String, TemplateError> {
        let cal: Option<Calendar> = caps.timestamp().map(|tp| tp.to_calendar());
        let mut out = String::new();
        for e in &self.elems {
            match e {
                TElem::Literal(s) => out.push_str(s),
                TElem::OrigName => out.push_str(orig_name),
                TElem::FeedName => out.push_str(feed_name),
                TElem::CaptureRef(n) => {
                    let cap = caps
                        .all()
                        .get(*n)
                        .ok_or(TemplateError::CaptureOutOfRange(n + 1))?;
                    out.push_str(&cap.text);
                }
                TElem::Ts(part) => {
                    let cal = cal.ok_or(TemplateError::NoTimestamp)?;
                    match part {
                        TsPart::Year4 => out.push_str(&format!("{:04}", cal.year)),
                        TsPart::Year2 => out.push_str(&format!("{:02}", cal.year % 100)),
                        TsPart::Month => out.push_str(&format!("{:02}", cal.month)),
                        TsPart::Day => out.push_str(&format!("{:02}", cal.day)),
                        TsPart::Hour => out.push_str(&format!("{:02}", cal.hour)),
                        TsPart::Minute => out.push_str(&format!("{:02}", cal.minute)),
                        TsPart::Second => out.push_str(&format!("{:02}", cal.second)),
                    }
                }
            }
        }
        Ok(out)
    }
}

impl fmt::Display for Template {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.text)
    }
}

impl std::str::FromStr for Template {
    type Err = TemplateError;
    fn from_str(s: &str) -> Result<Self, Self::Err> {
        Template::parse(s)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ast::Pattern;

    #[test]
    fn daily_directory_normalization() {
        // The paper's canonical example: organize files into daily dirs.
        let pat = Pattern::parse("MEMORY_poller%i_%Y%m%d.gz").unwrap();
        let caps = pat.match_str("MEMORY_poller2_20100925.gz").unwrap();
        let tpl = Template::parse("%Y/%m/%d/%f").unwrap();
        assert_eq!(
            tpl.render(&caps, "MEMORY_poller2_20100925.gz", "MEMORY")
                .unwrap(),
            "2010/09/25/MEMORY_poller2_20100925.gz"
        );
    }

    #[test]
    fn feed_hierarchy_layout() {
        let pat = Pattern::parse("CPU_POLL%i_%Y%m%d%H%M.txt").unwrap();
        let caps = pat.match_str("CPU_POLL2_201009251001.txt").unwrap();
        let tpl = Template::parse("%N/poller%1/%Y-%m-%d/%H%M.txt").unwrap();
        assert_eq!(
            tpl.render(&caps, "CPU_POLL2_201009251001.txt", "SNMP/CPU")
                .unwrap(),
            "SNMP/CPU/poller2/2010-09-25/1001.txt"
        );
    }

    #[test]
    fn capture_refs_are_one_based() {
        let pat = Pattern::parse("%a_%i.log").unwrap();
        let caps = pat.match_str("alarms_42.log").unwrap();
        let tpl = Template::parse("%2/%1").unwrap();
        assert_eq!(
            tpl.render(&caps, "alarms_42.log", "F").unwrap(),
            "42/alarms"
        );
        let tpl = Template::parse("%3").unwrap();
        assert_eq!(
            tpl.render(&caps, "alarms_42.log", "F"),
            Err(TemplateError::CaptureOutOfRange(3))
        );
    }

    #[test]
    fn timestamp_required_when_used() {
        let pat = Pattern::parse("file_%i.csv").unwrap();
        let caps = pat.match_str("file_3.csv").unwrap();
        let tpl = Template::parse("%Y/%f").unwrap();
        assert_eq!(
            tpl.render(&caps, "file_3.csv", "F"),
            Err(TemplateError::NoTimestamp)
        );
    }

    #[test]
    fn escape_and_errors() {
        let tpl = Template::parse("100%%/%f").unwrap();
        let pat = Pattern::parse("x%i").unwrap();
        let caps = pat.match_str("x1").unwrap();
        assert_eq!(tpl.render(&caps, "x1", "F").unwrap(), "100%/x1");
        assert_eq!(Template::parse(""), Err(TemplateError::Empty));
        assert_eq!(Template::parse("a%"), Err(TemplateError::TrailingPercent));
        assert_eq!(
            Template::parse("a%z"),
            Err(TemplateError::UnknownSpecifier('z'))
        );
    }

    #[test]
    fn two_digit_year_render() {
        let pat = Pattern::parse("f_%Y%m%d").unwrap();
        let caps = pat.match_str("f_20100925").unwrap();
        let tpl = Template::parse("%y-%m-%d/%f").unwrap();
        assert_eq!(
            tpl.render(&caps, "f_20100925", "F").unwrap(),
            "10-09-25/f_20100925"
        );
    }
}
