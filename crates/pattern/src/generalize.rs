//! Pattern generalization: from concrete filenames to candidate patterns.
//!
//! This is the core of the feed analyzer (paper §5.1): "Bistro uses a
//! collection of heuristics to identify fixed-length field boundaries,
//! including detecting changes between alphabetic and numeric characters
//! as well as recognizing common field formats (dates, numbers, ip
//! addresses). For each field in a filename Bistro computes its field
//! types and corresponding domains, e.g fixed-value string, categorical
//! variable, integer, timestamp."
//!
//! [`generalize`] maps one filename to a [`Shape`]; [`Shape::merge`]
//! folds additional filenames in, widening fixed values into domains.
//! The analyzer clusters compatible shapes into *atomic feeds* and
//! renders each cluster's shape back into a [`Pattern`] via
//! [`Shape::to_pattern`].

use crate::ast::{Pattern, TsPart};
use crate::token::{classify_digits, ipv4_at, tokenize, DigitsFormat, Token, TokenKind};
use std::collections::BTreeSet;
use std::fmt;

/// A timestamp run: one or more groups of components, each group preceded
/// by a separator string (the first group's separator is what precedes it
/// inside the run — always empty).
///
/// `2010092504_51` ⇒ groups `[("", [Y,m,d,H]), ("_", [M])]`;
/// `2010_12_30_00` ⇒ groups `[("", [Y]), ("_", [m]), ("_", [d]), ("_", [H])]`.
#[derive(Clone, Debug, PartialEq, Eq, Hash)]
pub struct TsRun {
    /// `(separator, components)` pairs.
    pub groups: Vec<(String, Vec<TsPart>)>,
}

impl TsRun {
    /// All components in order, ignoring grouping.
    pub fn parts(&self) -> Vec<TsPart> {
        self.groups.iter().flat_map(|(_, p)| p.clone()).collect()
    }

    /// Render as pattern text (`%Y%m%d%H_%M`).
    pub fn to_pattern_text(&self) -> String {
        let mut out = String::new();
        for (sep, parts) in &self.groups {
            out.push_str(&escape_literal(sep));
            for p in parts {
                out.push('%');
                out.push(p.spec_char());
            }
        }
        out
    }
}

/// One element of a generalized filename shape.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum ShapeElem {
    /// Fixed text (punctuation, or an alphabetic run not yet observed to
    /// vary).
    Lit(String),
    /// An alphabetic run whose value varies across the cluster; carries
    /// the observed domain.
    AlphaVar(BTreeSet<String>),
    /// A digit run that is not a timestamp; carries the observed value
    /// range and fixed width (if every observation had the same width).
    IntVar {
        /// Smallest observed value.
        min: u64,
        /// Largest observed value.
        max: u64,
        /// `Some(w)` if every observation had exactly `w` digits.
        width: Option<usize>,
        /// Observed distinct values (capped; used for categorical
        /// detection).
        domain: BTreeSet<u64>,
    },
    /// A recognized timestamp run.
    Ts(TsRun),
    /// A dotted IPv4 address.
    Ipv4(BTreeSet<String>),
}

/// Cap on tracked domain sizes — beyond this a field is clearly not a
/// small categorical variable and the exact domain stops mattering.
pub const DOMAIN_CAP: usize = 64;

/// Heuristic: an all-uppercase alphabetic token of ≥2 characters is
/// treated as a *feed name* token (`MEMORY`, `PPS`, `TOPO`, …). Two
/// distinct name tokens never widen into one categorical field — poller
/// software conventionally names its output kinds in uppercase, and
/// merging across them is exactly the aggregation mistake §5.1 warns the
/// human expert must arbitrate.
fn looks_like_name_token(s: &str) -> bool {
    s.len() >= 2 && s.bytes().all(|b| b.is_ascii_uppercase())
}

/// Escape literal text for embedding in pattern syntax.
fn escape_literal(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '%' => out.push_str("%%"),
            '*' => out.push_str("%*"),
            other => out.push(other),
        }
    }
    out
}

/// A generalized filename shape: the signature of an atomic feed.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Shape {
    elems: Vec<ShapeElem>,
    /// How many filenames this shape has absorbed.
    pub support: usize,
}

/// Scan tokens starting at `i` for a timestamp run. Returns the run and
/// the number of tokens consumed.
fn scan_ts_run(tokens: &[Token], i: usize) -> Option<(TsRun, usize)> {
    let t = &tokens[i];
    if t.kind != TokenKind::Digits {
        return None;
    }
    let (mut parts, compact): (Vec<TsPart>, bool) = match classify_digits(&t.text) {
        DigitsFormat::Ymd => (vec![TsPart::Year4, TsPart::Month, TsPart::Day], true),
        DigitsFormat::YmdH => (
            vec![TsPart::Year4, TsPart::Month, TsPart::Day, TsPart::Hour],
            true,
        ),
        DigitsFormat::YmdHm => (
            vec![
                TsPart::Year4,
                TsPart::Month,
                TsPart::Day,
                TsPart::Hour,
                TsPart::Minute,
            ],
            true,
        ),
        DigitsFormat::YmdHms => (
            vec![
                TsPart::Year4,
                TsPart::Month,
                TsPart::Day,
                TsPart::Hour,
                TsPart::Minute,
                TsPart::Second,
            ],
            true,
        ),
        DigitsFormat::Year => (vec![TsPart::Year4], false),
        DigitsFormat::Int => return None,
    };

    let mut groups: Vec<(String, Vec<TsPart>)> = Vec::new();
    let mut consumed = 1;

    if !compact {
        // Separated form: require at least Y <sep> m <sep> d to commit to a
        // timestamp (a bare 4-digit number is too ambiguous, §5.1).
        let month_ok = |s: &str| {
            s.len() == 2
                && s.parse::<u32>()
                    .map(|v| (1..=12).contains(&v))
                    .unwrap_or(false)
        };
        let day_ok = |s: &str| {
            s.len() == 2
                && s.parse::<u32>()
                    .map(|v| (1..=31).contains(&v))
                    .unwrap_or(false)
        };
        if i + 4 < tokens.len()
            && tokens[i + 1].kind == TokenKind::Punct
            && tokens[i + 2].kind == TokenKind::Digits
            && month_ok(&tokens[i + 2].text)
            && tokens[i + 3].kind == TokenKind::Punct
            && tokens[i + 4].kind == TokenKind::Digits
            && day_ok(&tokens[i + 4].text)
        {
            groups.push((String::new(), vec![TsPart::Year4]));
            groups.push((tokens[i + 1].text.clone(), vec![TsPart::Month]));
            groups.push((tokens[i + 3].text.clone(), vec![TsPart::Day]));
            parts = vec![TsPart::Year4, TsPart::Month, TsPart::Day];
            consumed = 5;
        } else {
            return None;
        }
    } else {
        groups.push((String::new(), parts.clone()));
    }

    // Extend with hour / minute / second groups: `<sep><2 digits>` where
    // the value is in range for the next expected component.
    loop {
        let next_part = match parts.last() {
            Some(TsPart::Day) => TsPart::Hour,
            Some(TsPart::Hour) => TsPart::Minute,
            Some(TsPart::Minute) => TsPart::Second,
            _ => break,
        };
        let limit = if next_part == TsPart::Hour { 23 } else { 59 };
        let si = i + consumed;
        if si + 1 < tokens.len()
            && tokens[si].kind == TokenKind::Punct
            && tokens[si + 1].kind == TokenKind::Digits
            && tokens[si + 1].text.len() == 2
            && tokens[si + 1]
                .text
                .parse::<u32>()
                .map(|v| v <= limit)
                .unwrap_or(false)
        {
            groups.push((tokens[si].text.clone(), vec![next_part]));
            parts.push(next_part);
            consumed += 2;
        } else {
            break;
        }
    }

    Some((TsRun { groups }, consumed))
}

/// Generalize a single filename into a [`Shape`].
pub fn generalize(name: &str) -> Shape {
    let tokens = tokenize(name);
    let mut elems: Vec<ShapeElem> = Vec::new();
    let mut i = 0;

    // Each token becomes its own element: alpha runs and punctuation are
    // NOT coalesced, so that merging can widen an individual alpha token
    // into a categorical field without disturbing its neighbors.
    let push_lit = |elems: &mut Vec<ShapeElem>, text: &str| {
        elems.push(ShapeElem::Lit(text.to_string()));
    };

    while i < tokens.len() {
        if let Some(n) = ipv4_at(&tokens, i) {
            let text: String = tokens[i..i + n].iter().map(|t| t.text.as_str()).collect();
            let mut dom = BTreeSet::new();
            dom.insert(text);
            elems.push(ShapeElem::Ipv4(dom));
            i += n;
            continue;
        }
        if let Some((run, n)) = scan_ts_run(&tokens, i) {
            elems.push(ShapeElem::Ts(run));
            i += n;
            continue;
        }
        let t = &tokens[i];
        match t.kind {
            TokenKind::Alpha | TokenKind::Punct => push_lit(&mut elems, &t.text),
            TokenKind::Digits => {
                let v: u64 = t.text.parse().unwrap_or(u64::MAX);
                let mut domain = BTreeSet::new();
                domain.insert(v);
                elems.push(ShapeElem::IntVar {
                    min: v,
                    max: v,
                    width: Some(t.text.len()),
                    domain,
                });
            }
        }
        i += 1;
    }

    Shape { elems, support: 1 }
}

impl Shape {
    /// The shape's elements.
    pub fn elems(&self) -> &[ShapeElem] {
        &self.elems
    }

    /// True if the shape contains a timestamp run.
    pub fn has_timestamp(&self) -> bool {
        self.elems.iter().any(|e| matches!(e, ShapeElem::Ts(_)))
    }

    /// A coarse structural signature: equal signatures are a necessary
    /// condition for two shapes to merge. Literal *alphabetic* values are
    /// included (feeds are usually distinguished by their name tokens);
    /// integer values are not.
    pub fn signature(&self) -> String {
        let mut out = String::new();
        for e in &self.elems {
            match e {
                ShapeElem::Lit(s) => {
                    out.push('L');
                    out.push_str(s);
                }
                ShapeElem::AlphaVar(_) => out.push('A'),
                ShapeElem::IntVar { .. } => out.push('I'),
                ShapeElem::Ts(run) => {
                    out.push('T');
                    out.push_str(&run.to_pattern_text());
                }
                ShapeElem::Ipv4(_) => out.push('P'),
            }
            out.push('\x1f');
        }
        out
    }

    /// A structure-only signature that *ignores* alphabetic literal
    /// values: shapes with equal structure signatures can be merged by
    /// widening literals into [`ShapeElem::AlphaVar`] domains.
    pub fn structure_signature(&self) -> String {
        let mut out = String::new();
        for e in &self.elems {
            match e {
                ShapeElem::Lit(s) => {
                    // keep punctuation exactly; abstract alpha runs
                    for c in s.chars() {
                        if c.is_ascii_alphabetic() {
                            if !out.ends_with('A') {
                                out.push('A');
                            }
                        } else {
                            out.push(c);
                        }
                    }
                }
                ShapeElem::AlphaVar(_) => out.push('A'),
                ShapeElem::IntVar { .. } => out.push('I'),
                ShapeElem::Ts(run) => {
                    out.push('T');
                    out.push_str(&run.to_pattern_text());
                }
                ShapeElem::Ipv4(_) => out.push('P'),
            }
            out.push('\x1f');
        }
        out
    }

    /// Attempt to merge another shape into this one. Returns `false`
    /// (leaving `self` unchanged) if the shapes are structurally
    /// incompatible.
    ///
    /// `allow_alpha_widening`: when true, differing alphabetic literals
    /// at the same position widen into a categorical [`ShapeElem::AlphaVar`];
    /// when false, differing alpha literals make the merge fail (the
    /// conservative default for cluster *identity* — the paper does not
    /// auto-merge subfeeds whose name tokens differ, it reports them as
    /// distinct atomic feeds).
    pub fn merge(&mut self, other: &Shape, allow_alpha_widening: bool) -> bool {
        if self.elems.len() != other.elems.len() {
            return false;
        }
        // dry-run: compute merged elements or bail
        let mut merged: Vec<ShapeElem> = Vec::with_capacity(self.elems.len());
        for (a, b) in self.elems.iter().zip(other.elems.iter()) {
            let m = match (a, b) {
                (ShapeElem::Lit(x), ShapeElem::Lit(y)) => {
                    if x == y {
                        ShapeElem::Lit(x.clone())
                    } else if allow_alpha_widening
                        && x.chars().all(|c| c.is_ascii_alphabetic())
                        && y.chars().all(|c| c.is_ascii_alphabetic())
                        && !(looks_like_name_token(x) && looks_like_name_token(y))
                    {
                        let mut dom = BTreeSet::new();
                        dom.insert(x.clone());
                        dom.insert(y.clone());
                        ShapeElem::AlphaVar(dom)
                    } else {
                        return false;
                    }
                }
                (ShapeElem::AlphaVar(dx), ShapeElem::Lit(y)) => {
                    if !y.chars().all(|c| c.is_ascii_alphabetic()) {
                        return false;
                    }
                    let mut dom = dx.clone();
                    if dom.len() < DOMAIN_CAP {
                        dom.insert(y.clone());
                    }
                    ShapeElem::AlphaVar(dom)
                }
                (ShapeElem::Lit(x), ShapeElem::AlphaVar(dy)) => {
                    if !x.chars().all(|c| c.is_ascii_alphabetic()) {
                        return false;
                    }
                    let mut dom = dy.clone();
                    if dom.len() < DOMAIN_CAP {
                        dom.insert(x.clone());
                    }
                    ShapeElem::AlphaVar(dom)
                }
                (ShapeElem::AlphaVar(dx), ShapeElem::AlphaVar(dy)) => {
                    let mut dom = dx.clone();
                    for v in dy {
                        if dom.len() >= DOMAIN_CAP {
                            break;
                        }
                        dom.insert(v.clone());
                    }
                    ShapeElem::AlphaVar(dom)
                }
                (
                    ShapeElem::IntVar {
                        min: min_a,
                        max: max_a,
                        width: wa,
                        domain: da,
                    },
                    ShapeElem::IntVar {
                        min: min_b,
                        max: max_b,
                        width: wb,
                        domain: db,
                    },
                ) => {
                    let width = match (wa, wb) {
                        (Some(x), Some(y)) if x == y => Some(*x),
                        _ => None,
                    };
                    let mut domain = da.clone();
                    for v in db {
                        if domain.len() >= DOMAIN_CAP {
                            break;
                        }
                        domain.insert(*v);
                    }
                    ShapeElem::IntVar {
                        min: (*min_a).min(*min_b),
                        max: (*max_a).max(*max_b),
                        width,
                        domain,
                    }
                }
                (ShapeElem::Ts(ra), ShapeElem::Ts(rb)) if ra == rb => ShapeElem::Ts(ra.clone()),
                (ShapeElem::Ipv4(da), ShapeElem::Ipv4(db)) => {
                    let mut dom = da.clone();
                    for v in db {
                        if dom.len() >= DOMAIN_CAP {
                            break;
                        }
                        dom.insert(v.clone());
                    }
                    ShapeElem::Ipv4(dom)
                }
                _ => return false,
            };
            merged.push(m);
        }
        self.elems = merged;
        self.support += other.support;
        true
    }

    /// Render the shape as a [`Pattern`].
    ///
    /// Variable alpha fields become `%a`, variable integers `%i`,
    /// timestamps their component specs, IPv4 fields `%i.%i.%i.%i`.
    pub fn to_pattern(&self) -> Pattern {
        let mut text = String::new();
        for e in &self.elems {
            match e {
                ShapeElem::Lit(s) => text.push_str(&escape_literal(s)),
                ShapeElem::AlphaVar(_) => text.push_str("%a"),
                ShapeElem::IntVar { .. } => text.push_str("%i"),
                ShapeElem::Ts(run) => text.push_str(&run.to_pattern_text()),
                ShapeElem::Ipv4(_) => text.push_str("%i.%i.%i.%i"),
            }
        }
        Pattern::parse(&text).expect("shape rendering always yields a valid pattern")
    }

    /// A human-readable description of the shape's fields and domains for
    /// analyzer reports.
    pub fn describe(&self) -> String {
        let mut parts = Vec::new();
        for (idx, e) in self.elems.iter().enumerate() {
            match e {
                ShapeElem::Lit(_) => {}
                ShapeElem::AlphaVar(dom) => {
                    let vals: Vec<_> = dom.iter().take(6).cloned().collect();
                    parts.push(format!(
                        "field {idx}: categorical {{{}{}}}",
                        vals.join(", "),
                        if dom.len() > 6 { ", …" } else { "" }
                    ));
                }
                ShapeElem::IntVar {
                    min,
                    max,
                    width,
                    domain,
                } => {
                    let w = width.map(|w| format!(", width {w}")).unwrap_or_default();
                    parts.push(format!(
                        "field {idx}: integer {min}..={max}{w} ({} values)",
                        domain.len()
                    ));
                }
                ShapeElem::Ts(run) => {
                    parts.push(format!("field {idx}: timestamp {}", run.to_pattern_text()));
                }
                ShapeElem::Ipv4(dom) => {
                    parts.push(format!("field {idx}: ipv4 ({} addresses)", dom.len()));
                }
            }
        }
        if parts.is_empty() {
            "all-literal".to_string()
        } else {
            parts.join("; ")
        }
    }
}

impl fmt::Display for Shape {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.to_pattern().text())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generalize_paper_memory_files() {
        // From §5.1: MEMORY_POLLER1_2010092504_51.csv.gz et al.
        let s = generalize("MEMORY_POLLER1_2010092504_51.csv.gz");
        let p = s.to_pattern();
        assert_eq!(p.text(), "MEMORY_POLLER%i_%Y%m%d%H_%M.csv.gz");
        assert!(p.is_match("MEMORY_POLLER2_2010092510_02.csv.gz"));
    }

    #[test]
    fn generalize_paper_cpu_files() {
        let s = generalize("CPU_POLL1_201009250502.txt");
        assert_eq!(s.to_pattern().text(), "CPU_POLL%i_%Y%m%d%H%M.txt");
    }

    #[test]
    fn generalize_separated_timestamp() {
        // Poller1_router_a_2010_12_30_00.csv from §2.1.2
        let s = generalize("Poller1_router_a_2010_12_30_00.csv");
        assert_eq!(s.to_pattern().text(), "Poller%i_router_a_%Y_%m_%d_%H.csv");
    }

    #[test]
    fn generalize_compact_daily() {
        let s = generalize("MEMORY_poller1_20100925.gz");
        assert_eq!(s.to_pattern().text(), "MEMORY_poller%i_%Y%m%d.gz");
    }

    #[test]
    fn bare_year_stays_integer() {
        // A lone 4-digit number without month/day must not become %Y.
        let s = generalize("report_2010_final.txt");
        assert_eq!(s.to_pattern().text(), "report_%i_final.txt");
    }

    #[test]
    fn ipv4_recognized() {
        let s = generalize("syslog_10.0.200.31_20100925.gz");
        assert_eq!(s.to_pattern().text(), "syslog_%i.%i.%i.%i_%Y%m%d.gz");
    }

    #[test]
    fn merge_same_structure() {
        let mut a = generalize("MEMORY_POLLER1_2010092504_51.csv.gz");
        let b = generalize("MEMORY_POLLER2_2010092510_02.csv.gz");
        assert!(a.merge(&b, false));
        assert_eq!(a.support, 2);
        match &a.elems()[3] {
            ShapeElem::IntVar {
                min, max, domain, ..
            } => {
                assert_eq!((*min, *max), (1, 2));
                assert_eq!(domain.len(), 2);
            }
            other => panic!("expected IntVar, got {other:?}"),
        }
    }

    #[test]
    fn merge_rejects_different_structure() {
        let mut a = generalize("MEMORY_POLLER1_2010092504_51.csv.gz");
        let b = generalize("CPU_POLL1_201009250502.txt");
        assert!(!a.merge(&b, false));
        assert_eq!(a.support, 1);
    }

    #[test]
    fn merge_alpha_widening_policy() {
        let mut a = generalize("traffic_east_20100925.csv");
        let b = generalize("traffic_west_20100925.csv");
        // conservative mode keeps the regions as distinct atomic feeds
        let mut a2 = a.clone();
        assert!(!a2.merge(&b, false));
        // widening mode folds them into a categorical field
        assert!(a.merge(&b, true));
        assert_eq!(a.to_pattern().text(), "traffic_%a_%Y%m%d.csv");
        match &a.elems()[2] {
            ShapeElem::AlphaVar(dom) => {
                assert!(dom.contains("east") && dom.contains("west"));
            }
            other => panic!("expected AlphaVar, got {other:?}"),
        }
    }

    #[test]
    fn uppercase_name_tokens_never_widen() {
        // BPS and PPS are feed-name tokens: even widening mode must not
        // fold them into one categorical field (paper §5.1: cross-name
        // grouping is left to the human expert).
        let mut a = generalize("BPS_p1_20100925.csv");
        let b = generalize("PPS_p1_20100925.csv");
        assert!(!a.merge(&b, true));
    }

    #[test]
    fn merge_widens_width_on_mismatch() {
        let mut a = generalize("f_07.csv");
        let b = generalize("f_123.csv");
        assert!(a.merge(&b, false));
        match &a.elems()[2] {
            ShapeElem::IntVar {
                width, min, max, ..
            } => {
                assert_eq!(*width, None);
                assert_eq!((*min, *max), (7, 123));
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn signatures_distinguish_and_group() {
        let a = generalize("MEMORY_POLLER1_2010092504_51.csv.gz");
        let b = generalize("MEMORY_POLLER2_2010092505_12.csv.gz");
        let c = generalize("CPU_POLL1_201009250502.txt");
        assert_eq!(a.signature(), b.signature());
        assert_ne!(a.signature(), c.signature());
        // structure signature abstracts the MEMORY/CPU name tokens but the
        // differing timestamp layouts still separate them
        assert_ne!(a.structure_signature(), c.structure_signature());
        let d = generalize("BPS_p1_20100925.csv");
        let e = generalize("PPS_p9_20100925.csv");
        assert_ne!(d.signature(), e.signature());
        assert_eq!(d.structure_signature(), e.structure_signature());
    }

    #[test]
    fn generalized_pattern_matches_origin() {
        // property: the generalized pattern must match the filename it
        // came from
        for name in [
            "MEMORY_POLLER1_2010092504_51.csv.gz",
            "CPU_POLL2_201009251001.txt",
            "Poller1_router_a_2010_12_30_24.csv", // hour 24 is out of range ⇒ int
            "TRAP__20100308_DCTAGN_klpi.txt",
            "alarms.log",
            "x",
            "2010.csv",
        ] {
            let s = generalize(name);
            assert!(
                s.to_pattern().is_match(name),
                "pattern {} does not match its origin {name}",
                s.to_pattern()
            );
        }
    }

    #[test]
    fn escape_in_literals() {
        let s = generalize("weird%name*file.txt");
        let p = s.to_pattern();
        assert!(p.is_match("weird%name*file.txt"));
        assert!(!p.is_match("weird%nameXfile.txt"));
    }

    #[test]
    fn describe_mentions_domains() {
        let mut a = generalize("traffic_east_p1_20100925.csv");
        assert!(a.merge(&generalize("traffic_west_p2_20100925.csv"), true));
        let d = a.describe();
        assert!(d.contains("categorical"), "{d}");
        assert!(d.contains("timestamp"), "{d}");
    }
}
