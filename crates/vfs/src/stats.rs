//! Metadata-operation accounting.
//!
//! The paper argues (§2.2) that pull-based delivery and rsync/cron both
//! collapse under the weight of filesystem *metadata* operations — "serving
//! file metadata is always a bottleneck due to a more significant
//! synchronization overhead" — while Bistro's receipt-driven push touches
//! only the new files. [`MetaStats`] is the ledger that makes those costs
//! measurable: every backend increments it on every operation, and the E1
//! and E2 experiments report these counters directly.

use std::sync::atomic::{AtomicU64, Ordering};

/// Counters for filesystem operations, all monotonically increasing.
#[derive(Debug, Default)]
pub struct MetaStats {
    /// `list_dir` calls.
    pub list_dir_calls: AtomicU64,
    /// Total directory entries returned across all `list_dir` calls — the
    /// dominant cost term for polling subscribers.
    pub entries_scanned: AtomicU64,
    /// `metadata` (stat) calls.
    pub stat_calls: AtomicU64,
    /// File reads.
    pub reads: AtomicU64,
    /// Bytes read.
    pub bytes_read: AtomicU64,
    /// File writes.
    pub writes: AtomicU64,
    /// Bytes written.
    pub bytes_written: AtomicU64,
    /// Renames (landing → staging moves).
    pub renames: AtomicU64,
    /// File/dir removals.
    pub removes: AtomicU64,
}

/// A point-in-time copy of [`MetaStats`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct MetaSnapshot {
    pub list_dir_calls: u64,
    pub entries_scanned: u64,
    pub stat_calls: u64,
    pub reads: u64,
    pub bytes_read: u64,
    pub writes: u64,
    pub bytes_written: u64,
    pub renames: u64,
    pub removes: u64,
}

impl MetaStats {
    /// Fresh zeroed ledger.
    pub fn new() -> Self {
        Self::default()
    }

    pub(crate) fn record_list(&self, entries: u64) {
        self.list_dir_calls.fetch_add(1, Ordering::Relaxed);
        self.entries_scanned.fetch_add(entries, Ordering::Relaxed);
    }

    pub(crate) fn record_stat(&self) {
        self.stat_calls.fetch_add(1, Ordering::Relaxed);
    }

    pub(crate) fn record_read(&self, bytes: u64) {
        self.reads.fetch_add(1, Ordering::Relaxed);
        self.bytes_read.fetch_add(bytes, Ordering::Relaxed);
    }

    pub(crate) fn record_write(&self, bytes: u64) {
        self.writes.fetch_add(1, Ordering::Relaxed);
        self.bytes_written.fetch_add(bytes, Ordering::Relaxed);
    }

    pub(crate) fn record_rename(&self) {
        self.renames.fetch_add(1, Ordering::Relaxed);
    }

    pub(crate) fn record_remove(&self) {
        self.removes.fetch_add(1, Ordering::Relaxed);
    }

    /// Bridge the ledger into a telemetry registry as `vfs.*` counters.
    ///
    /// `MetaStats` stays the source of truth (every backend already holds
    /// an `&MetaStats`); this copies the current monotone totals into
    /// same-named registry counters, so it should be called at snapshot
    /// points (`Server::tick`, `bistro status`), not per operation.
    pub fn publish(&self, reg: &bistro_telemetry::Registry) {
        let snap = self.snapshot();
        reg.counter("vfs.list_dir_calls").set(snap.list_dir_calls);
        reg.counter("vfs.entries_scanned").set(snap.entries_scanned);
        reg.counter("vfs.stat_calls").set(snap.stat_calls);
        reg.counter("vfs.reads").set(snap.reads);
        reg.counter("vfs.bytes_read").set(snap.bytes_read);
        reg.counter("vfs.writes").set(snap.writes);
        reg.counter("vfs.bytes_written").set(snap.bytes_written);
        reg.counter("vfs.renames").set(snap.renames);
        reg.counter("vfs.removes").set(snap.removes);
    }

    /// Snapshot the counters.
    pub fn snapshot(&self) -> MetaSnapshot {
        MetaSnapshot {
            list_dir_calls: self.list_dir_calls.load(Ordering::Relaxed),
            entries_scanned: self.entries_scanned.load(Ordering::Relaxed),
            stat_calls: self.stat_calls.load(Ordering::Relaxed),
            reads: self.reads.load(Ordering::Relaxed),
            bytes_read: self.bytes_read.load(Ordering::Relaxed),
            writes: self.writes.load(Ordering::Relaxed),
            bytes_written: self.bytes_written.load(Ordering::Relaxed),
            renames: self.renames.load(Ordering::Relaxed),
            removes: self.removes.load(Ordering::Relaxed),
        }
    }
}

impl MetaSnapshot {
    /// Counter-wise difference `self - earlier` (saturating).
    pub fn since(&self, earlier: &MetaSnapshot) -> MetaSnapshot {
        MetaSnapshot {
            list_dir_calls: self.list_dir_calls.saturating_sub(earlier.list_dir_calls),
            entries_scanned: self.entries_scanned.saturating_sub(earlier.entries_scanned),
            stat_calls: self.stat_calls.saturating_sub(earlier.stat_calls),
            reads: self.reads.saturating_sub(earlier.reads),
            bytes_read: self.bytes_read.saturating_sub(earlier.bytes_read),
            writes: self.writes.saturating_sub(earlier.writes),
            bytes_written: self.bytes_written.saturating_sub(earlier.bytes_written),
            renames: self.renames.saturating_sub(earlier.renames),
            removes: self.removes.saturating_sub(earlier.removes),
        }
    }

    /// Total metadata operations (listings + entries + stats) — the
    /// quantity the paper's pull-vs-push argument is about.
    pub fn metadata_ops(&self) -> u64 {
        self.list_dir_calls + self.entries_scanned + self.stat_calls
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn snapshot_and_diff() {
        let s = MetaStats::new();
        s.record_list(10);
        s.record_list(5);
        s.record_stat();
        s.record_read(100);
        s.record_write(200);
        s.record_rename();
        s.record_remove();

        let snap = s.snapshot();
        assert_eq!(snap.list_dir_calls, 2);
        assert_eq!(snap.entries_scanned, 15);
        assert_eq!(snap.stat_calls, 1);
        assert_eq!(snap.reads, 1);
        assert_eq!(snap.bytes_read, 100);
        assert_eq!(snap.writes, 1);
        assert_eq!(snap.bytes_written, 200);
        assert_eq!(snap.renames, 1);
        assert_eq!(snap.removes, 1);
        assert_eq!(snap.metadata_ops(), 2 + 15 + 1);

        s.record_list(3);
        let later = s.snapshot();
        let d = later.since(&snap);
        assert_eq!(d.list_dir_calls, 1);
        assert_eq!(d.entries_scanned, 3);
        assert_eq!(d.reads, 0);
    }

    #[test]
    fn publish_bridges_totals_into_registry() {
        let s = MetaStats::new();
        s.record_list(4);
        s.record_read(100);
        let reg = bistro_telemetry::Registry::new();
        s.publish(&reg);
        assert_eq!(reg.counter_value("vfs.list_dir_calls"), Some(1));
        assert_eq!(reg.counter_value("vfs.entries_scanned"), Some(4));
        assert_eq!(reg.counter_value("vfs.bytes_read"), Some(100));
        // re-publish overwrites with the new absolute totals
        s.record_list(1);
        s.publish(&reg);
        assert_eq!(reg.counter_value("vfs.list_dir_calls"), Some(2));
        assert_eq!(reg.counter_value("vfs.entries_scanned"), Some(5));
    }
}
