//! In-memory filesystem backend.
//!
//! A `BTreeMap<String, Node>` keyed by normalized path. The BTree ordering
//! makes `list_dir` a range scan over the directory's prefix, mirroring
//! how real directory listings cost O(entries). File bodies are
//! `Arc<[u8]>` so reads are cheap clones.

use crate::path::{ancestors, normalize};
use crate::stats::MetaStats;
use crate::{DirEntry, EntryKind, FileMeta, FileStore, VfsError};
use bistro_base::sync::RwLock;
use bistro_base::{SharedClock, TimePoint};
use std::collections::{BTreeMap, HashSet};
use std::sync::Arc;

#[derive(Clone)]
enum Node {
    File {
        // Arc<Vec> (not Arc<[u8]>) so `append` can extend in place via
        // Arc::get_mut when no reader holds a reference — keeping WAL
        // appends O(appended bytes) instead of O(file size).
        data: Arc<Vec<u8>>,
        mtime: TimePoint,
    },
    Dir {
        mtime: TimePoint,
    },
}

/// In-memory [`FileStore`].
pub struct MemFs {
    clock: SharedClock,
    tree: RwLock<BTreeMap<String, Node>>,
    /// Parent directories already verified (or created) by
    /// `ensure_parents` — the write hot path skips the per-ancestor
    /// tree walk when a file's parent is cached here. Only
    /// `remove_dir` can make a cached entry stale, and it evicts.
    known_dirs: RwLock<HashSet<String>>,
    stats: MetaStats,
}

impl MemFs {
    /// Create an empty store whose mtimes come from `clock`.
    pub fn new(clock: SharedClock) -> Self {
        MemFs {
            clock,
            tree: RwLock::new(BTreeMap::new()),
            known_dirs: RwLock::new(HashSet::new()),
            stats: MetaStats::new(),
        }
    }

    /// Create an empty store wrapped in an `Arc`.
    pub fn shared(clock: SharedClock) -> Arc<Self> {
        Arc::new(Self::new(clock))
    }

    /// Number of files (not directories) in the store.
    pub fn file_count(&self) -> usize {
        self.tree
            .read()
            .values()
            .filter(|n| matches!(n, Node::File { .. }))
            .count()
    }

    /// Total bytes across all files.
    pub fn total_bytes(&self) -> u64 {
        self.tree
            .read()
            .values()
            .map(|n| match n {
                Node::File { data, .. } => data.len() as u64,
                Node::Dir { .. } => 0,
            })
            .sum()
    }

    fn ensure_parents(
        &self,
        tree: &mut BTreeMap<String, Node>,
        path: &str,
        now: TimePoint,
    ) -> Result<(), VfsError> {
        // fast path: a cached parent means the whole ancestor chain was
        // verified as directories before, and only `remove_dir` (which
        // evicts) could have changed that
        let parent = match path.rsplit_once('/') {
            Some((p, _)) => p,
            None => return Ok(()),
        };
        if self.known_dirs.read().contains(parent) {
            return Ok(());
        }
        for anc in ancestors(path) {
            match tree.get(anc) {
                None => {
                    tree.insert(anc.to_string(), Node::Dir { mtime: now });
                }
                Some(Node::Dir { .. }) => {}
                Some(Node::File { .. }) => {
                    return Err(VfsError::NotADirectory(anc.to_string()));
                }
            }
        }
        self.known_dirs.write().insert(parent.to_string());
        Ok(())
    }

    /// True if `dir` has any children in `tree`.
    fn has_children(tree: &BTreeMap<String, Node>, dir: &str) -> bool {
        let prefix = if dir.is_empty() {
            String::new()
        } else {
            format!("{dir}/")
        };
        tree.range(prefix.clone()..)
            .take_while(|(k, _)| k.starts_with(&prefix))
            .next()
            .is_some()
    }
}

impl FileStore for MemFs {
    fn write(&self, path: &str, data: &[u8]) -> Result<(), VfsError> {
        let path = normalize(path)?;
        if path.is_empty() {
            return Err(VfsError::IsADirectory(String::new()));
        }
        let now = self.clock.now();
        let mut tree = self.tree.write();
        self.ensure_parents(&mut tree, path, now)?;
        if let Some(Node::Dir { .. }) = tree.get(path) {
            return Err(VfsError::IsADirectory(path.to_string()));
        }
        tree.insert(
            path.to_string(),
            Node::File {
                data: Arc::new(data.to_vec()),
                mtime: now,
            },
        );
        self.stats.record_write(data.len() as u64);
        Ok(())
    }

    fn append(&self, path: &str, data: &[u8]) -> Result<(), VfsError> {
        let path = normalize(path)?;
        if path.is_empty() {
            return Err(VfsError::IsADirectory(String::new()));
        }
        let now = self.clock.now();
        let mut tree = self.tree.write();
        self.ensure_parents(&mut tree, path, now)?;
        match tree.get_mut(path) {
            Some(Node::File {
                data: existing,
                mtime,
            }) => {
                match Arc::get_mut(existing) {
                    Some(buf) => buf.extend_from_slice(data),
                    None => {
                        // a reader holds the old contents: copy-on-write
                        let mut buf = Vec::with_capacity(existing.len() + data.len());
                        buf.extend_from_slice(existing);
                        buf.extend_from_slice(data);
                        *existing = Arc::new(buf);
                    }
                }
                *mtime = now;
            }
            Some(Node::Dir { .. }) => return Err(VfsError::IsADirectory(path.to_string())),
            None => {
                tree.insert(
                    path.to_string(),
                    Node::File {
                        data: Arc::new(data.to_vec()),
                        mtime: now,
                    },
                );
            }
        }
        self.stats.record_write(data.len() as u64);
        Ok(())
    }

    fn write_owned(&self, path: &str, data: Vec<u8>) -> Result<(), VfsError> {
        let path = normalize(path)?;
        if path.is_empty() {
            return Err(VfsError::IsADirectory(String::new()));
        }
        let now = self.clock.now();
        let len = data.len() as u64;
        let mut tree = self.tree.write();
        self.ensure_parents(&mut tree, path, now)?;
        if let Some(Node::Dir { .. }) = tree.get(path) {
            return Err(VfsError::IsADirectory(path.to_string()));
        }
        // the whole point: adopt the caller's buffer instead of copying it
        tree.insert(
            path.to_string(),
            Node::File {
                data: Arc::new(data),
                mtime: now,
            },
        );
        self.stats.record_write(len);
        Ok(())
    }

    fn append_many(&self, path: &str, parts: &[&[u8]]) -> Result<(), VfsError> {
        let path = normalize(path)?;
        if path.is_empty() {
            return Err(VfsError::IsADirectory(String::new()));
        }
        if parts.is_empty() {
            return Ok(());
        }
        let now = self.clock.now();
        let total: usize = parts.iter().map(|p| p.len()).sum();
        let mut tree = self.tree.write();
        self.ensure_parents(&mut tree, path, now)?;
        match tree.get_mut(path) {
            Some(Node::File {
                data: existing,
                mtime,
            }) => {
                match Arc::get_mut(existing) {
                    Some(buf) => {
                        buf.reserve(total);
                        for part in parts {
                            buf.extend_from_slice(part);
                        }
                    }
                    None => {
                        let mut buf = Vec::with_capacity(existing.len() + total);
                        buf.extend_from_slice(existing);
                        for part in parts {
                            buf.extend_from_slice(part);
                        }
                        *existing = Arc::new(buf);
                    }
                }
                *mtime = now;
            }
            Some(Node::Dir { .. }) => return Err(VfsError::IsADirectory(path.to_string())),
            None => {
                let mut buf = Vec::with_capacity(total);
                for part in parts {
                    buf.extend_from_slice(part);
                }
                tree.insert(
                    path.to_string(),
                    Node::File {
                        data: Arc::new(buf),
                        mtime: now,
                    },
                );
            }
        }
        // ledger contract: one write per part, batched or not
        for part in parts {
            self.stats.record_write(part.len() as u64);
        }
        Ok(())
    }

    fn read(&self, path: &str) -> Result<Vec<u8>, VfsError> {
        let path = normalize(path)?;
        let tree = self.tree.read();
        match tree.get(path) {
            Some(Node::File { data, .. }) => {
                self.stats.record_read(data.len() as u64);
                Ok(data.to_vec())
            }
            Some(Node::Dir { .. }) => Err(VfsError::IsADirectory(path.to_string())),
            None => Err(VfsError::NotFound(path.to_string())),
        }
    }

    fn metadata(&self, path: &str) -> Result<FileMeta, VfsError> {
        let path = normalize(path)?;
        self.stats.record_stat();
        if path.is_empty() {
            return Ok(FileMeta {
                size: 0,
                mtime: TimePoint::EPOCH,
                kind: EntryKind::Dir,
            });
        }
        let tree = self.tree.read();
        match tree.get(path) {
            Some(Node::File { data, mtime }) => Ok(FileMeta {
                size: data.len() as u64,
                mtime: *mtime,
                kind: EntryKind::File,
            }),
            Some(Node::Dir { mtime }) => Ok(FileMeta {
                size: 0,
                mtime: *mtime,
                kind: EntryKind::Dir,
            }),
            None => Err(VfsError::NotFound(path.to_string())),
        }
    }

    fn remove(&self, path: &str) -> Result<(), VfsError> {
        let path = normalize(path)?;
        let mut tree = self.tree.write();
        match tree.get(path) {
            Some(Node::File { .. }) => {
                tree.remove(path);
                self.stats.record_remove();
                Ok(())
            }
            Some(Node::Dir { .. }) => Err(VfsError::IsADirectory(path.to_string())),
            None => Err(VfsError::NotFound(path.to_string())),
        }
    }

    fn remove_dir(&self, path: &str) -> Result<(), VfsError> {
        let path = normalize(path)?;
        if path.is_empty() {
            return Err(VfsError::InvalidPath("cannot remove root".to_string()));
        }
        let mut tree = self.tree.write();
        match tree.get(path) {
            Some(Node::Dir { .. }) => {
                if Self::has_children(&tree, path) {
                    return Err(VfsError::Io(format!("directory not empty: {path}")));
                }
                tree.remove(path);
                // the dir may be cached as a verified parent; a later
                // write must re-walk (and re-create) the ancestor chain
                self.known_dirs.write().remove(path);
                self.stats.record_remove();
                Ok(())
            }
            Some(Node::File { .. }) => Err(VfsError::NotADirectory(path.to_string())),
            None => Err(VfsError::NotFound(path.to_string())),
        }
    }

    fn rename(&self, from: &str, to: &str) -> Result<(), VfsError> {
        let from = normalize(from)?;
        let to = normalize(to)?;
        let now = self.clock.now();
        let mut tree = self.tree.write();
        if tree.contains_key(to) {
            return Err(VfsError::AlreadyExists(to.to_string()));
        }
        let node = match tree.get(from) {
            Some(Node::File { .. }) => tree.remove(from).unwrap(),
            Some(Node::Dir { .. }) => return Err(VfsError::IsADirectory(from.to_string())),
            None => return Err(VfsError::NotFound(from.to_string())),
        };
        if let Err(e) = self.ensure_parents(&mut tree, to, now) {
            // restore on failure to keep the operation atomic
            tree.insert(from.to_string(), node);
            return Err(e);
        }
        tree.insert(to.to_string(), node);
        self.stats.record_rename();
        Ok(())
    }

    fn replace(&self, from: &str, to: &str) -> Result<(), VfsError> {
        let from = normalize(from)?;
        let to = normalize(to)?;
        let now = self.clock.now();
        let mut tree = self.tree.write();
        match tree.get(from) {
            Some(Node::File { .. }) => {}
            Some(Node::Dir { .. }) => return Err(VfsError::IsADirectory(from.to_string())),
            None => return Err(VfsError::NotFound(from.to_string())),
        }
        if let Some(Node::Dir { .. }) = tree.get(to) {
            return Err(VfsError::IsADirectory(to.to_string()));
        }
        let node = tree.remove(from).unwrap();
        if let Err(e) = self.ensure_parents(&mut tree, to, now) {
            // restore on failure to keep the operation atomic
            tree.insert(from.to_string(), node);
            return Err(e);
        }
        tree.insert(to.to_string(), node);
        self.stats.record_rename();
        Ok(())
    }

    fn create_dir_all(&self, path: &str) -> Result<(), VfsError> {
        let path = normalize(path)?;
        if path.is_empty() {
            return Ok(());
        }
        let now = self.clock.now();
        let mut tree = self.tree.write();
        self.ensure_parents(&mut tree, path, now)?;
        match tree.get(path) {
            Some(Node::Dir { .. }) => Ok(()),
            Some(Node::File { .. }) => Err(VfsError::NotADirectory(path.to_string())),
            None => {
                tree.insert(path.to_string(), Node::Dir { mtime: now });
                Ok(())
            }
        }
    }

    fn list_dir(&self, path: &str) -> Result<Vec<DirEntry>, VfsError> {
        let path = normalize(path)?;
        let tree = self.tree.read();
        if !path.is_empty() {
            match tree.get(path) {
                Some(Node::Dir { .. }) => {}
                Some(Node::File { .. }) => return Err(VfsError::NotADirectory(path.to_string())),
                None => return Err(VfsError::NotFound(path.to_string())),
            }
        }
        let prefix = if path.is_empty() {
            String::new()
        } else {
            format!("{path}/")
        };
        let mut out = Vec::new();
        for (k, node) in tree
            .range(prefix.clone()..)
            .take_while(|(k, _)| k.starts_with(&prefix))
        {
            let rest = &k[prefix.len()..];
            if rest.contains('/') {
                continue; // deeper descendant; its parent dir node will be seen
            }
            out.push(DirEntry {
                name: rest.to_string(),
                kind: match node {
                    Node::File { .. } => EntryKind::File,
                    Node::Dir { .. } => EntryKind::Dir,
                },
            });
        }
        self.stats.record_list(out.len() as u64);
        Ok(out)
    }

    fn exists(&self, path: &str) -> bool {
        match normalize(path) {
            Ok("") => true,
            Ok(p) => self.tree.read().contains_key(p),
            Err(_) => false,
        }
    }

    fn stats(&self) -> &MetaStats {
        &self.stats
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bistro_base::{SimClock, TimeSpan};

    fn fs() -> (Arc<bistro_base::clock::SimClock>, MemFs) {
        let clock = SimClock::new();
        let fs = MemFs::new(clock.clone());
        (clock, fs)
    }

    #[test]
    fn write_read_roundtrip() {
        let (_c, fs) = fs();
        fs.write("a/b/file.csv", b"hello").unwrap();
        assert_eq!(fs.read("a/b/file.csv").unwrap(), b"hello");
        assert!(fs.exists("a"));
        assert!(fs.exists("a/b"));
        assert_eq!(fs.metadata("a").unwrap().kind, EntryKind::Dir);
    }

    #[test]
    fn write_overwrites() {
        let (_c, fs) = fs();
        fs.write("f", b"one").unwrap();
        fs.write("f", b"two").unwrap();
        assert_eq!(fs.read("f").unwrap(), b"two");
        assert_eq!(fs.file_count(), 1);
    }

    #[test]
    fn mtime_tracks_clock() {
        let (c, fs) = fs();
        fs.write("f1", b"x").unwrap();
        c.advance(TimeSpan::from_secs(100));
        fs.write("f2", b"y").unwrap();
        let m1 = fs.metadata("f1").unwrap().mtime;
        let m2 = fs.metadata("f2").unwrap().mtime;
        assert_eq!(m2 - m1, TimeSpan::from_secs(100));
    }

    #[test]
    fn list_dir_sorted_and_shallow() {
        let (_c, fs) = fs();
        fs.write("d/b.csv", b"").unwrap();
        fs.write("d/a.csv", b"").unwrap();
        fs.write("d/sub/deep.csv", b"").unwrap();
        let entries = fs.list_dir("d").unwrap();
        let names: Vec<_> = entries.iter().map(|e| e.name.as_str()).collect();
        assert_eq!(names, vec!["a.csv", "b.csv", "sub"]);
        assert_eq!(entries[2].kind, EntryKind::Dir);
    }

    #[test]
    fn list_root() {
        let (_c, fs) = fs();
        fs.write("top.csv", b"").unwrap();
        fs.write("dir/x.csv", b"").unwrap();
        let names: Vec<_> = fs
            .list_dir("")
            .unwrap()
            .into_iter()
            .map(|e| e.name)
            .collect();
        assert_eq!(names, vec!["dir", "top.csv"]);
    }

    #[test]
    fn list_missing_dir_errors() {
        let (_c, fs) = fs();
        assert!(matches!(fs.list_dir("nope"), Err(VfsError::NotFound(_))));
    }

    #[test]
    fn rename_moves_atomically() {
        let (_c, fs) = fs();
        fs.write("landing/x.csv", b"data").unwrap();
        fs.rename("landing/x.csv", "staging/feed1/x.csv").unwrap();
        assert!(!fs.exists("landing/x.csv"));
        assert_eq!(fs.read("staging/feed1/x.csv").unwrap(), b"data");
    }

    #[test]
    fn rename_refuses_overwrite() {
        let (_c, fs) = fs();
        fs.write("a", b"1").unwrap();
        fs.write("b", b"2").unwrap();
        assert!(matches!(
            fs.rename("a", "b"),
            Err(VfsError::AlreadyExists(_))
        ));
        assert_eq!(fs.read("a").unwrap(), b"1");
    }

    #[test]
    fn replace_overwrites_destination() {
        let (_c, fs) = fs();
        fs.write("snapshot.tmp", b"new").unwrap();
        fs.write("snapshot.bin", b"old").unwrap();
        fs.replace("snapshot.tmp", "snapshot.bin").unwrap();
        assert!(!fs.exists("snapshot.tmp"));
        assert_eq!(fs.read("snapshot.bin").unwrap(), b"new");
    }

    #[test]
    fn replace_without_destination_acts_like_rename() {
        let (_c, fs) = fs();
        fs.write("a", b"1").unwrap();
        fs.replace("a", "d/b").unwrap();
        assert!(!fs.exists("a"));
        assert_eq!(fs.read("d/b").unwrap(), b"1");
    }

    #[test]
    fn replace_rejects_directories() {
        let (_c, fs) = fs();
        fs.write("f", b"x").unwrap();
        fs.create_dir_all("d").unwrap();
        assert!(matches!(
            fs.replace("d", "e"),
            Err(VfsError::IsADirectory(_))
        ));
        assert!(matches!(
            fs.replace("f", "d"),
            Err(VfsError::IsADirectory(_))
        ));
        assert!(matches!(
            fs.replace("missing", "f"),
            Err(VfsError::NotFound(_))
        ));
        assert_eq!(fs.read("f").unwrap(), b"x");
    }

    #[test]
    fn rename_missing_source_errors() {
        let (_c, fs) = fs();
        assert!(matches!(
            fs.rename("missing", "dest"),
            Err(VfsError::NotFound(_))
        ));
    }

    #[test]
    fn remove_file_and_dir() {
        let (_c, fs) = fs();
        fs.write("d/f", b"x").unwrap();
        assert!(matches!(fs.remove_dir("d"), Err(VfsError::Io(_)))); // not empty
        fs.remove("d/f").unwrap();
        fs.remove_dir("d").unwrap();
        assert!(!fs.exists("d"));
    }

    #[test]
    fn remove_dir_evicts_parent_cache() {
        let (_c, fs) = fs();
        // cache "d" as a verified parent, empty it, remove it...
        fs.write("d/f", b"x").unwrap();
        fs.remove("d/f").unwrap();
        fs.remove_dir("d").unwrap();
        assert!(!fs.exists("d"));
        // ...then a later write must re-create the ancestor chain rather
        // than trust the stale cache entry
        fs.write("d/g", b"y").unwrap();
        assert!(fs.exists("d"));
        assert_eq!(fs.metadata("d").unwrap().kind, EntryKind::Dir);
        assert_eq!(fs.read("d/g").unwrap(), b"y");
    }

    #[test]
    fn cannot_write_over_dir() {
        let (_c, fs) = fs();
        fs.create_dir_all("d").unwrap();
        assert!(matches!(
            fs.write("d", b"x"),
            Err(VfsError::IsADirectory(_))
        ));
    }

    #[test]
    fn cannot_treat_file_as_dir() {
        let (_c, fs) = fs();
        fs.write("f", b"x").unwrap();
        assert!(matches!(
            fs.write("f/child", b"y"),
            Err(VfsError::NotADirectory(_))
        ));
        assert!(matches!(fs.list_dir("f"), Err(VfsError::NotADirectory(_))));
    }

    #[test]
    fn stats_count_scans() {
        let (_c, fs) = fs();
        for i in 0..10 {
            fs.write(&format!("d/f{i}.csv"), b"x").unwrap();
        }
        let before = fs.stats().snapshot();
        fs.list_dir("d").unwrap();
        fs.list_dir("d").unwrap();
        let after = fs.stats().snapshot().since(&before);
        assert_eq!(after.list_dir_calls, 2);
        assert_eq!(after.entries_scanned, 20);
    }

    #[test]
    fn invalid_paths_rejected_everywhere() {
        let (_c, fs) = fs();
        assert!(fs.write("../escape", b"x").is_err());
        assert!(fs.read("/abs").is_err());
        assert!(!fs.exists("a//b"));
    }
}

#[cfg(test)]
mod append_tests {
    use super::*;
    use crate::FileStore;
    use bistro_base::SimClock;

    #[test]
    fn append_creates_and_extends() {
        let fs = MemFs::new(SimClock::new());
        fs.append("wal/seg1", b"abc").unwrap();
        fs.append("wal/seg1", b"def").unwrap();
        assert_eq!(fs.read("wal/seg1").unwrap(), b"abcdef");
    }

    #[test]
    fn append_to_dir_errors() {
        let fs = MemFs::new(SimClock::new());
        fs.create_dir_all("d").unwrap();
        assert!(matches!(
            fs.append("d", b"x"),
            Err(VfsError::IsADirectory(_))
        ));
    }

    #[test]
    fn append_many_matches_per_record_appends_bytes_and_ledger() {
        let a = MemFs::new(SimClock::new());
        let b = MemFs::new(SimClock::new());
        let parts: Vec<&[u8]> = vec![b"one", b"", b"twotwo", b"3"];
        a.append_many("wal/seg1", &parts).unwrap();
        for p in &parts {
            b.append("wal/seg1", p).unwrap();
        }
        assert_eq!(a.read("wal/seg1").unwrap(), b.read("wal/seg1").unwrap());
        let (sa, sb) = (a.stats().snapshot(), b.stats().snapshot());
        assert_eq!(sa.writes, sb.writes, "one ledger write per part");
        assert_eq!(sa.bytes_written, sb.bytes_written);
    }

    #[test]
    fn append_many_extends_existing_and_empty_is_noop() {
        let fs = MemFs::new(SimClock::new());
        fs.append("wal/seg1", b"head").unwrap();
        fs.append_many("wal/seg1", &[b"-a", b"-b"]).unwrap();
        assert_eq!(fs.read("wal/seg1").unwrap(), b"head-a-b");
        let before = fs.stats().snapshot();
        fs.append_many("wal/seg1", &[]).unwrap();
        assert_eq!(fs.stats().snapshot().writes, before.writes);
    }

    #[test]
    fn write_owned_stores_without_changing_ledger_shape() {
        let a = MemFs::new(SimClock::new());
        let b = MemFs::new(SimClock::new());
        a.write_owned("staging/x", b"payload".to_vec()).unwrap();
        b.write("staging/x", b"payload").unwrap();
        assert_eq!(a.read("staging/x").unwrap(), b.read("staging/x").unwrap());
        assert_eq!(a.stats().snapshot().writes, b.stats().snapshot().writes);
        assert_eq!(
            a.stats().snapshot().bytes_written,
            b.stats().snapshot().bytes_written
        );
    }
}
