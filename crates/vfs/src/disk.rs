//! Real-filesystem backend.
//!
//! A [`DiskFs`] exposes one host directory as a store root. All paths are
//! validated by [`crate::path::normalize`] before touching the host
//! filesystem, so the store cannot escape its root. Used when a Bistro
//! server runs against actual landing directories; everything else
//! (tests, simulations, experiments) uses [`crate::MemFs`].

use crate::path::{normalize, parent};
use crate::stats::MetaStats;
use crate::{DirEntry, EntryKind, FileMeta, FileStore, VfsError};
use bistro_base::TimePoint;
use std::fs;
use std::io;
use std::path::PathBuf;
use std::time::UNIX_EPOCH;

/// On-disk [`FileStore`] rooted at a host directory.
pub struct DiskFs {
    root: PathBuf,
    stats: MetaStats,
}

fn io_err(e: io::Error, path: &str) -> VfsError {
    match e.kind() {
        io::ErrorKind::NotFound => VfsError::NotFound(path.to_string()),
        io::ErrorKind::AlreadyExists => VfsError::AlreadyExists(path.to_string()),
        _ => VfsError::Io(format!("{path}: {e}")),
    }
}

impl DiskFs {
    /// Open (creating if necessary) a store rooted at `root`.
    pub fn open(root: impl Into<PathBuf>) -> Result<Self, VfsError> {
        let root = root.into();
        fs::create_dir_all(&root)
            .map_err(|e| VfsError::Io(format!("creating root {}: {e}", root.display())))?;
        Ok(DiskFs {
            root,
            stats: MetaStats::new(),
        })
    }

    fn host_path(&self, path: &str) -> Result<PathBuf, VfsError> {
        let path = normalize(path)?;
        let mut p = self.root.clone();
        if !path.is_empty() {
            p.push(path);
        }
        Ok(p)
    }
}

impl FileStore for DiskFs {
    fn write(&self, path: &str, data: &[u8]) -> Result<(), VfsError> {
        let host = self.host_path(path)?;
        if let Some(par) = parent(normalize(path)?) {
            if !par.is_empty() {
                fs::create_dir_all(self.root.join(par)).map_err(|e| io_err(e, par))?;
            }
        }
        // write-then-rename for atomicity (readers never see partial files,
        // the "landing zone" discipline of §4.1)
        let tmp = host.with_extension("bistro_tmp");
        fs::write(&tmp, data).map_err(|e| io_err(e, path))?;
        fs::rename(&tmp, &host).map_err(|e| io_err(e, path))?;
        self.stats.record_write(data.len() as u64);
        Ok(())
    }

    fn append(&self, path: &str, data: &[u8]) -> Result<(), VfsError> {
        let host = self.host_path(path)?;
        if host.is_dir() {
            return Err(VfsError::IsADirectory(path.to_string()));
        }
        if let Some(par) = parent(normalize(path)?) {
            if !par.is_empty() {
                fs::create_dir_all(self.root.join(par)).map_err(|e| io_err(e, par))?;
            }
        }
        use std::io::Write;
        let mut f = fs::OpenOptions::new()
            .create(true)
            .append(true)
            .open(&host)
            .map_err(|e| io_err(e, path))?;
        f.write_all(data).map_err(|e| io_err(e, path))?;
        self.stats.record_write(data.len() as u64);
        Ok(())
    }

    fn read(&self, path: &str) -> Result<Vec<u8>, VfsError> {
        let host = self.host_path(path)?;
        if host.is_dir() {
            return Err(VfsError::IsADirectory(path.to_string()));
        }
        let data = fs::read(&host).map_err(|e| io_err(e, path))?;
        self.stats.record_read(data.len() as u64);
        Ok(data)
    }

    fn metadata(&self, path: &str) -> Result<FileMeta, VfsError> {
        let host = self.host_path(path)?;
        self.stats.record_stat();
        let md = fs::metadata(&host).map_err(|e| io_err(e, path))?;
        let mtime = md
            .modified()
            .ok()
            .and_then(|t| t.duration_since(UNIX_EPOCH).ok())
            .map(|d| TimePoint::from_micros(d.as_micros() as u64))
            .unwrap_or(TimePoint::EPOCH);
        Ok(FileMeta {
            size: md.len(),
            mtime,
            kind: if md.is_dir() {
                EntryKind::Dir
            } else {
                EntryKind::File
            },
        })
    }

    fn remove(&self, path: &str) -> Result<(), VfsError> {
        let host = self.host_path(path)?;
        if host.is_dir() {
            return Err(VfsError::IsADirectory(path.to_string()));
        }
        fs::remove_file(&host).map_err(|e| io_err(e, path))?;
        self.stats.record_remove();
        Ok(())
    }

    fn remove_dir(&self, path: &str) -> Result<(), VfsError> {
        let host = self.host_path(path)?;
        if host.is_file() {
            return Err(VfsError::NotADirectory(path.to_string()));
        }
        fs::remove_dir(&host).map_err(|e| io_err(e, path))?;
        self.stats.record_remove();
        Ok(())
    }

    fn rename(&self, from: &str, to: &str) -> Result<(), VfsError> {
        let host_from = self.host_path(from)?;
        let host_to = self.host_path(to)?;
        if !host_from.exists() {
            return Err(VfsError::NotFound(from.to_string()));
        }
        if host_from.is_dir() {
            return Err(VfsError::IsADirectory(from.to_string()));
        }
        if host_to.exists() {
            return Err(VfsError::AlreadyExists(to.to_string()));
        }
        if let Some(par) = parent(normalize(to)?) {
            if !par.is_empty() {
                fs::create_dir_all(self.root.join(par)).map_err(|e| io_err(e, par))?;
            }
        }
        fs::rename(&host_from, &host_to).map_err(|e| io_err(e, from))?;
        self.stats.record_rename();
        Ok(())
    }

    fn replace(&self, from: &str, to: &str) -> Result<(), VfsError> {
        let host_from = self.host_path(from)?;
        let host_to = self.host_path(to)?;
        if !host_from.exists() {
            return Err(VfsError::NotFound(from.to_string()));
        }
        if host_from.is_dir() {
            return Err(VfsError::IsADirectory(from.to_string()));
        }
        if host_to.is_dir() {
            return Err(VfsError::IsADirectory(to.to_string()));
        }
        if let Some(par) = parent(normalize(to)?) {
            if !par.is_empty() {
                fs::create_dir_all(self.root.join(par)).map_err(|e| io_err(e, par))?;
            }
        }
        // POSIX rename(2) atomically replaces an existing destination
        fs::rename(&host_from, &host_to).map_err(|e| io_err(e, from))?;
        self.stats.record_rename();
        Ok(())
    }

    fn create_dir_all(&self, path: &str) -> Result<(), VfsError> {
        let host = self.host_path(path)?;
        if host.is_file() {
            return Err(VfsError::NotADirectory(path.to_string()));
        }
        fs::create_dir_all(&host).map_err(|e| io_err(e, path))
    }

    fn list_dir(&self, path: &str) -> Result<Vec<DirEntry>, VfsError> {
        let host = self.host_path(path)?;
        if host.is_file() {
            return Err(VfsError::NotADirectory(path.to_string()));
        }
        let rd = fs::read_dir(&host).map_err(|e| io_err(e, path))?;
        let mut out = Vec::new();
        for entry in rd {
            let entry = entry.map_err(|e| io_err(e, path))?;
            let name = entry.file_name().to_string_lossy().into_owned();
            if name.ends_with(".bistro_tmp") {
                continue; // in-flight atomic writes are invisible
            }
            let kind = if entry.file_type().map(|t| t.is_dir()).unwrap_or(false) {
                EntryKind::Dir
            } else {
                EntryKind::File
            };
            out.push(DirEntry { name, kind });
        }
        out.sort_by(|a, b| a.name.cmp(&b.name));
        self.stats.record_list(out.len() as u64);
        Ok(out)
    }

    fn exists(&self, path: &str) -> bool {
        match self.host_path(path) {
            Ok(p) => p.exists(),
            Err(_) => false,
        }
    }

    fn stats(&self) -> &MetaStats {
        &self.stats
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmp_store(name: &str) -> DiskFs {
        let dir =
            std::env::temp_dir().join(format!("bistro_vfs_test_{name}_{}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        DiskFs::open(dir).unwrap()
    }

    #[test]
    fn disk_roundtrip() {
        let fs = tmp_store("roundtrip");
        fs.write("a/b/file.csv", b"hello").unwrap();
        assert_eq!(fs.read("a/b/file.csv").unwrap(), b"hello");
        let names: Vec<_> = fs
            .list_dir("a")
            .unwrap()
            .into_iter()
            .map(|e| e.name)
            .collect();
        assert_eq!(names, vec!["b"]);
    }

    #[test]
    fn disk_rename_and_remove() {
        let fs = tmp_store("rename");
        fs.write("landing/x.csv", b"data").unwrap();
        fs.rename("landing/x.csv", "staging/x.csv").unwrap();
        assert!(!fs.exists("landing/x.csv"));
        assert_eq!(fs.read("staging/x.csv").unwrap(), b"data");
        fs.remove("staging/x.csv").unwrap();
        assert!(!fs.exists("staging/x.csv"));
    }

    #[test]
    fn disk_rejects_escape() {
        let fs = tmp_store("escape");
        assert!(fs.write("../evil", b"x").is_err());
        assert!(fs.read("/etc/passwd").is_err());
    }

    #[test]
    fn disk_metadata() {
        let fs = tmp_store("meta");
        fs.write("f.bin", &[0u8; 123]).unwrap();
        let md = fs.metadata("f.bin").unwrap();
        assert_eq!(md.size, 123);
        assert_eq!(md.kind, EntryKind::File);
    }

    #[test]
    fn disk_rename_no_overwrite() {
        let fs = tmp_store("no_overwrite");
        fs.write("a", b"1").unwrap();
        fs.write("b", b"2").unwrap();
        assert!(matches!(
            fs.rename("a", "b"),
            Err(VfsError::AlreadyExists(_))
        ));
    }

    #[test]
    fn disk_replace_overwrites() {
        let fs = tmp_store("replace");
        fs.write("snapshot.tmp", b"new").unwrap();
        fs.write("snapshot.bin", b"old").unwrap();
        fs.replace("snapshot.tmp", "snapshot.bin").unwrap();
        assert!(!fs.exists("snapshot.tmp"));
        assert_eq!(fs.read("snapshot.bin").unwrap(), b"new");
        // also works when the destination is absent
        fs.replace("snapshot.bin", "sub/snapshot.bin").unwrap();
        assert_eq!(fs.read("sub/snapshot.bin").unwrap(), b"new");
    }

    #[test]
    fn disk_stats_recorded() {
        let fs = tmp_store("stats");
        fs.write("d/one", b"x").unwrap();
        fs.write("d/two", b"y").unwrap();
        let before = fs.stats().snapshot();
        fs.list_dir("d").unwrap();
        let d = fs.stats().snapshot().since(&before);
        assert_eq!(d.list_dir_calls, 1);
        assert_eq!(d.entries_scanned, 2);
    }
}
