//! Store-relative path handling.
//!
//! Paths are UTF-8, slash-separated, and always relative to the store
//! root. The empty string is the root itself. Normalization rejects
//! anything that could escape the root — this is the sandbox that lets
//! `DiskFs` safely expose a real directory.

use std::fmt;

/// Errors from path validation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum PathError {
    /// Path began with `/`.
    Absolute(String),
    /// Path contained a `.` or `..` segment.
    DotSegment(String),
    /// Path contained an empty segment (`a//b`) or trailing slash.
    EmptySegment(String),
    /// Path contained a backslash (platform confusion guard).
    Backslash(String),
    /// Path contained a NUL byte.
    Nul(String),
}

impl fmt::Display for PathError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PathError::Absolute(p) => write!(f, "absolute path not allowed: {p:?}"),
            PathError::DotSegment(p) => write!(f, "dot segment not allowed: {p:?}"),
            PathError::EmptySegment(p) => write!(f, "empty path segment: {p:?}"),
            PathError::Backslash(p) => write!(f, "backslash in path: {p:?}"),
            PathError::Nul(p) => write!(f, "NUL byte in path: {p:?}"),
        }
    }
}

impl std::error::Error for PathError {}

/// Validate and normalize a store path. Returns the path unchanged on
/// success (normalization is pure validation — there is exactly one
/// spelling of every valid path).
pub fn normalize(path: &str) -> Result<&str, PathError> {
    if path.is_empty() {
        return Ok(path); // the root
    }
    if path.contains('\0') {
        return Err(PathError::Nul(path.to_string()));
    }
    if path.contains('\\') {
        return Err(PathError::Backslash(path.to_string()));
    }
    if path.starts_with('/') {
        return Err(PathError::Absolute(path.to_string()));
    }
    for seg in path.split('/') {
        if seg.is_empty() {
            return Err(PathError::EmptySegment(path.to_string()));
        }
        if seg == "." || seg == ".." {
            return Err(PathError::DotSegment(path.to_string()));
        }
    }
    Ok(path)
}

/// Join a directory path and a child name.
pub fn join(dir: &str, name: &str) -> String {
    if dir.is_empty() {
        name.to_string()
    } else {
        format!("{dir}/{name}")
    }
}

/// The parent directory of a path (`""` for top-level entries), or `None`
/// for the root itself.
pub fn parent(path: &str) -> Option<&str> {
    if path.is_empty() {
        return None;
    }
    match path.rfind('/') {
        Some(i) => Some(&path[..i]),
        None => Some(""),
    }
}

/// The final component of a path (`None` for the root).
pub fn file_name(path: &str) -> Option<&str> {
    if path.is_empty() {
        return None;
    }
    match path.rfind('/') {
        Some(i) => Some(&path[i + 1..]),
        None => Some(path),
    }
}

/// All strict ancestors of a path, outermost first (excluding the root).
/// `ancestors("a/b/c")` yields `["a", "a/b"]`.
pub fn ancestors(path: &str) -> Vec<&str> {
    let mut out = Vec::new();
    let mut idx = 0;
    for (i, ch) in path.char_indices() {
        if ch == '/' {
            out.push(&path[..i]);
            idx = i;
        }
    }
    let _ = idx;
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn normalize_accepts_good_paths() {
        for p in [
            "",
            "a",
            "a/b",
            "landing/poller1/MEMORY_20100925.gz",
            "x.y.z",
        ] {
            assert_eq!(normalize(p), Ok(p));
        }
    }

    #[test]
    fn normalize_rejects_bad_paths() {
        assert!(matches!(normalize("/abs"), Err(PathError::Absolute(_))));
        assert!(matches!(normalize("a/../b"), Err(PathError::DotSegment(_))));
        assert!(matches!(normalize("./a"), Err(PathError::DotSegment(_))));
        assert!(matches!(normalize("a//b"), Err(PathError::EmptySegment(_))));
        assert!(matches!(normalize("a/"), Err(PathError::EmptySegment(_))));
        assert!(matches!(normalize("a\\b"), Err(PathError::Backslash(_))));
        assert!(matches!(normalize("a\0b"), Err(PathError::Nul(_))));
    }

    #[test]
    fn join_handles_root() {
        assert_eq!(join("", "a"), "a");
        assert_eq!(join("a", "b"), "a/b");
        assert_eq!(join("a/b", "c.csv"), "a/b/c.csv");
    }

    #[test]
    fn parent_and_file_name() {
        assert_eq!(parent(""), None);
        assert_eq!(parent("a"), Some(""));
        assert_eq!(parent("a/b/c"), Some("a/b"));
        assert_eq!(file_name(""), None);
        assert_eq!(file_name("a"), Some("a"));
        assert_eq!(file_name("a/b/c.csv"), Some("c.csv"));
    }

    #[test]
    fn ancestors_list() {
        assert_eq!(ancestors("a/b/c"), vec!["a", "a/b"]);
        assert_eq!(ancestors("a"), Vec::<&str>::new());
        assert_eq!(ancestors(""), Vec::<&str>::new());
    }
}
