//! # bistro-vfs
//!
//! A virtual filesystem abstraction for Bistro's landing and staging
//! directories.
//!
//! Two backends implement the same [`FileStore`] trait:
//!
//! * [`MemFs`] — an in-memory tree driven by a [`bistro_base::Clock`];
//!   deterministic and fast, used by tests, simulations and experiments.
//! * [`DiskFs`] — a sandboxed view of a real directory tree, used when a
//!   Bistro server runs against actual data.
//!
//! The abstraction exists for a second reason: **metadata-operation
//! accounting**. The paper's central argument against pull-based feed
//! delivery (§2.2.1) and rsync/cron (§2.2.2) is that their cost is
//! dominated by directory scans whose cost grows linearly with stored
//! history. Every [`FileStore`] keeps a [`MetaStats`] ledger counting
//! directory listings, entries scanned, stats, reads, writes and renames,
//! which is exactly what experiments E1/E2 measure.

pub mod disk;
pub mod fault;
pub mod mem;
pub mod path;
pub mod stats;

pub use disk::DiskFs;
pub use fault::FaultStore;
pub use mem::MemFs;
pub use path::{join, normalize, parent, PathError};
pub use stats::MetaStats;

use bistro_base::TimePoint;
use std::fmt;
use std::sync::Arc;

/// Kind of a directory entry.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum EntryKind {
    /// A regular file.
    File,
    /// A directory.
    Dir,
}

/// One entry returned by [`FileStore::list_dir`].
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct DirEntry {
    /// Name within the parent directory (no separators).
    pub name: String,
    /// File or directory.
    pub kind: EntryKind,
}

/// Metadata for a single file.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct FileMeta {
    /// Size in bytes.
    pub size: u64,
    /// Last-modified time.
    pub mtime: TimePoint,
    /// File or directory.
    pub kind: EntryKind,
}

/// Errors from filesystem operations.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum VfsError {
    /// The path does not exist.
    NotFound(String),
    /// The destination already exists.
    AlreadyExists(String),
    /// Expected a directory, found a file.
    NotADirectory(String),
    /// Expected a file, found a directory.
    IsADirectory(String),
    /// The path was syntactically invalid (absolute, `..`, empty segment).
    InvalidPath(String),
    /// An underlying I/O error (DiskFs only).
    Io(String),
}

impl fmt::Display for VfsError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            VfsError::NotFound(p) => write!(f, "not found: {p}"),
            VfsError::AlreadyExists(p) => write!(f, "already exists: {p}"),
            VfsError::NotADirectory(p) => write!(f, "not a directory: {p}"),
            VfsError::IsADirectory(p) => write!(f, "is a directory: {p}"),
            VfsError::InvalidPath(p) => write!(f, "invalid path: {p}"),
            VfsError::Io(e) => write!(f, "i/o error: {e}"),
        }
    }
}

impl std::error::Error for VfsError {}

impl From<PathError> for VfsError {
    fn from(e: PathError) -> Self {
        VfsError::InvalidPath(e.to_string())
    }
}

/// A filesystem namespace with slash-separated relative paths.
///
/// All paths are relative to the store's root; `normalize` rules apply
/// (no leading `/`, no `.`/`..` segments, no empty segments). The root is
/// the empty string `""`.
pub trait FileStore: Send + Sync {
    /// Write a file, creating parent directories implicitly and replacing
    /// any existing file at `path`.
    fn write(&self, path: &str, data: &[u8]) -> Result<(), VfsError>;

    /// Append to a file, creating it (and parent directories) if absent.
    /// This is the write-ahead-log primitive used by `bistro-receipts`.
    fn append(&self, path: &str, data: &[u8]) -> Result<(), VfsError>;

    /// [`FileStore::write`] taking ownership of the payload. Backends
    /// that can store the buffer directly (MemFs) override this to skip
    /// the copy; the default delegates to `write`. The [`MetaStats`]
    /// ledger records exactly one write of `data.len()` bytes either
    /// way, so callers may switch freely between the two forms.
    fn write_owned(&self, path: &str, data: Vec<u8>) -> Result<(), VfsError> {
        self.write(path, &data)
    }

    /// Append several records to a file in order, as if by one
    /// [`FileStore::append`] call per part. This is the group-commit
    /// primitive: backends may coalesce the parts into a single physical
    /// append (one lock/syscall/fsync), but the [`MetaStats`] ledger
    /// MUST record one write per part — the ledger is a pure function of
    /// the record stream, independent of how records were batched. Fault
    /// backends likewise keep per-part granularity, so a crash or torn
    /// write between parts leaves a clean prefix of whole parts.
    fn append_many(&self, path: &str, parts: &[&[u8]]) -> Result<(), VfsError> {
        for part in parts {
            self.append(path, part)?;
        }
        Ok(())
    }

    /// Read a file's entire contents.
    fn read(&self, path: &str) -> Result<Vec<u8>, VfsError>;

    /// File or directory metadata.
    fn metadata(&self, path: &str) -> Result<FileMeta, VfsError>;

    /// Remove a file (not a directory).
    fn remove(&self, path: &str) -> Result<(), VfsError>;

    /// Remove an empty directory.
    fn remove_dir(&self, path: &str) -> Result<(), VfsError>;

    /// Atomically move a file. Fails if `to` exists. Parent directories of
    /// `to` are created implicitly (this is the landing → staging move,
    /// which must be cheap and atomic per §4.1).
    fn rename(&self, from: &str, to: &str) -> Result<(), VfsError>;

    /// Atomically move a file onto `to`, replacing any existing file
    /// there (rename-with-overwrite, POSIX `rename(2)` semantics). This
    /// is the publish step of write-then-rename updates: callers write a
    /// temp file, then `replace` it over the live name, so readers only
    /// ever observe the old bytes or the new bytes — never a torn mix.
    fn replace(&self, from: &str, to: &str) -> Result<(), VfsError>;

    /// Create a directory and any missing parents.
    fn create_dir_all(&self, path: &str) -> Result<(), VfsError>;

    /// List the entries of a directory, sorted by name.
    fn list_dir(&self, path: &str) -> Result<Vec<DirEntry>, VfsError>;

    /// True if the path exists (file or directory).
    fn exists(&self, path: &str) -> bool;

    /// The metadata-operation ledger for this store.
    fn stats(&self) -> &MetaStats;
}

/// Shared handle to a file store.
pub type SharedStore = Arc<dyn FileStore>;

/// Recursively list all *files* under `root` (depth-first, sorted),
/// returning store-relative paths.
///
/// This is what a pull-based subscriber or an rsync-style comparator has
/// to do on every poll; its cost shows up in the store's [`MetaStats`].
pub fn walk_files(store: &dyn FileStore, root: &str) -> Result<Vec<String>, VfsError> {
    let mut out = Vec::new();
    let mut stack = vec![root.to_string()];
    while let Some(dir) = stack.pop() {
        for entry in store.list_dir(&dir)? {
            let full = join(&dir, &entry.name);
            match entry.kind {
                EntryKind::File => out.push(full),
                EntryKind::Dir => stack.push(full),
            }
        }
    }
    out.sort();
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use bistro_base::SimClock;

    #[test]
    fn walk_files_collects_nested() {
        let clock = SimClock::new();
        let fs = MemFs::new(clock);
        fs.write("a/b/one.csv", b"1").unwrap();
        fs.write("a/two.csv", b"2").unwrap();
        fs.write("three.csv", b"3").unwrap();
        let files = walk_files(&fs, "").unwrap();
        assert_eq!(files, vec!["a/b/one.csv", "a/two.csv", "three.csv"]);
    }

    #[test]
    fn walk_files_subtree() {
        let clock = SimClock::new();
        let fs = MemFs::new(clock);
        fs.write("landing/p1/x.csv", b"x").unwrap();
        fs.write("staging/p1/y.csv", b"y").unwrap();
        let files = walk_files(&fs, "landing").unwrap();
        assert_eq!(files, vec!["landing/p1/x.csv"]);
    }
}
