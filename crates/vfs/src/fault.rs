//! Seeded storage crash-point injection.
//!
//! [`FaultStore`] wraps any [`FileStore`] and simulates power loss at a
//! chosen *mutating-operation index*: the Nth write/append/remove/rename/
//! replace/create_dir is torn (a seeded prefix of the bytes lands, or the
//! whole metadata operation lands-or-doesn't by a seeded coin flip) and
//! every operation after it fails — the store is *poisoned*, exactly as
//! if the process had lost power mid-syscall. The surviving bytes stay in
//! the inner store, so a recovery path can be exercised by reopening the
//! inner store directly.
//!
//! Everything is derived from `(seed, crash_op)`, so any sweep failure is
//! bit-for-bit replayable from those two numbers alone. A separate
//! one-shot *transient read fault* mode fails the Nth `read` once without
//! poisoning, to exercise paths that must tolerate (not swallow) I/O
//! errors on reads.
//!
//! The fault model is deliberately weaker than what [`crate::DiskFs`]
//! provides: `write` is NOT assumed atomic (a torn prefix may land), only
//! `rename`/`replace` are all-or-nothing. Durable artifacts must therefore
//! survive torn writes via framing (WAL) or write-then-rename (snapshot,
//! config) — see DESIGN.md §"Storage failure model".

use crate::stats::MetaStats;
use crate::{DirEntry, FileMeta, FileStore, VfsError};
use bistro_base::sync::Mutex;
use bistro_base::Rng;
use std::sync::Arc;

/// Sentinel op index that never fires.
const NEVER: u64 = u64::MAX;

#[derive(Default)]
struct State {
    mut_ops: u64,
    read_ops: u64,
    poisoned: bool,
    crashed: bool,
    read_faulted: bool,
}

/// A [`FileStore`] wrapper that simulates a power loss at a seeded
/// storage-operation index (see module docs).
pub struct FaultStore {
    inner: Arc<dyn FileStore>,
    seed: u64,
    crash_op: u64,
    read_fault_op: u64,
    state: Mutex<State>,
}

impl FaultStore {
    /// Wrap `inner` in counting-only mode: no fault ever fires. Used to
    /// size a sweep — run the scenario once, then read
    /// [`mutation_ops`](Self::mutation_ops) / [`read_ops`](Self::read_ops).
    pub fn counting(inner: Arc<dyn FileStore>) -> FaultStore {
        FaultStore {
            inner,
            seed: 0,
            crash_op: NEVER,
            read_fault_op: NEVER,
            state: Mutex::new(State::default()),
        }
    }

    /// Wrap `inner` so the mutating operation with index `crash_op`
    /// (0-based) is torn and the store is poisoned afterwards. The tear
    /// point / applied-or-not coin is derived from `(seed, crash_op)`.
    pub fn armed(inner: Arc<dyn FileStore>, seed: u64, crash_op: u64) -> FaultStore {
        FaultStore {
            inner,
            seed,
            crash_op,
            read_fault_op: NEVER,
            state: Mutex::new(State::default()),
        }
    }

    /// Wrap `inner` so the `read` call with index `read_op` (0-based)
    /// fails once with a transient I/O error. No poisoning: every other
    /// operation succeeds normally.
    pub fn with_read_fault(inner: Arc<dyn FileStore>, read_op: u64) -> FaultStore {
        FaultStore {
            inner,
            seed: 0,
            crash_op: NEVER,
            read_fault_op: read_op,
            state: Mutex::new(State::default()),
        }
    }

    /// Mutating operations observed so far (including the crashed one).
    pub fn mutation_ops(&self) -> u64 {
        self.state.lock().mut_ops
    }

    /// `read` calls observed so far (including a faulted one).
    pub fn read_ops(&self) -> u64 {
        self.state.lock().read_ops
    }

    /// True once the armed crash point has fired.
    pub fn crashed(&self) -> bool {
        self.state.lock().crashed
    }

    /// True once the one-shot read fault has fired.
    pub fn read_faulted(&self) -> bool {
        self.state.lock().read_faulted
    }

    fn poisoned_err(&self) -> VfsError {
        VfsError::Io(format!(
            "fault: store poisoned (crashed at op {} of seed {:#x})",
            self.crash_op, self.seed
        ))
    }

    /// Account one mutating op. Returns `Ok(None)` to proceed normally,
    /// `Ok(Some(rng))` when this op is the crash point (the caller tears
    /// the op using `rng`, then returns the crash error), or `Err` when
    /// the store is already poisoned.
    fn mutating(&self) -> Result<Option<Rng>, VfsError> {
        let mut st = self.state.lock();
        if st.poisoned {
            return Err(self.poisoned_err());
        }
        let idx = st.mut_ops;
        st.mut_ops += 1;
        if idx == self.crash_op {
            st.poisoned = true;
            st.crashed = true;
            // one independent stream per (seed, crash_op) pair
            return Ok(Some(Rng::seed_from_u64(
                self.seed ^ idx.wrapping_mul(0x9E37_79B9_7F4A_7C15),
            )));
        }
        Ok(None)
    }

    fn crash_err(&self) -> VfsError {
        VfsError::Io(format!(
            "fault: simulated power loss at storage op {} (seed {:#x})",
            self.crash_op, self.seed
        ))
    }

    fn check_poisoned(&self) -> Result<(), VfsError> {
        if self.state.lock().poisoned {
            Err(self.poisoned_err())
        } else {
            Ok(())
        }
    }
}

impl FileStore for FaultStore {
    fn write(&self, path: &str, data: &[u8]) -> Result<(), VfsError> {
        match self.mutating()? {
            None => self.inner.write(path, data),
            Some(mut rng) => {
                // a torn prefix of the new bytes lands in place of the
                // old file — write() carries no atomicity in this model
                let keep = rng.gen_range(0..=data.len());
                let _ = self.inner.write(path, &data[..keep]);
                Err(self.crash_err())
            }
        }
    }

    fn append(&self, path: &str, data: &[u8]) -> Result<(), VfsError> {
        match self.mutating()? {
            None => self.inner.append(path, data),
            Some(mut rng) => {
                let keep = rng.gen_range(0..=data.len());
                let _ = self.inner.append(path, &data[..keep]);
                Err(self.crash_err())
            }
        }
    }

    fn read(&self, path: &str) -> Result<Vec<u8>, VfsError> {
        {
            let mut st = self.state.lock();
            if st.poisoned {
                return Err(self.poisoned_err());
            }
            let idx = st.read_ops;
            st.read_ops += 1;
            if idx == self.read_fault_op {
                st.read_faulted = true;
                return Err(VfsError::Io(format!(
                    "fault: transient read error at read op {idx}"
                )));
            }
        }
        self.inner.read(path)
    }

    fn metadata(&self, path: &str) -> Result<FileMeta, VfsError> {
        self.check_poisoned()?;
        self.inner.metadata(path)
    }

    fn remove(&self, path: &str) -> Result<(), VfsError> {
        match self.mutating()? {
            None => self.inner.remove(path),
            Some(mut rng) => {
                // metadata ops are all-or-nothing: a coin decides whether
                // the op reached the medium before the lights went out
                if rng.gen_bool(0.5) {
                    let _ = self.inner.remove(path);
                }
                Err(self.crash_err())
            }
        }
    }

    fn remove_dir(&self, path: &str) -> Result<(), VfsError> {
        match self.mutating()? {
            None => self.inner.remove_dir(path),
            Some(mut rng) => {
                if rng.gen_bool(0.5) {
                    let _ = self.inner.remove_dir(path);
                }
                Err(self.crash_err())
            }
        }
    }

    fn rename(&self, from: &str, to: &str) -> Result<(), VfsError> {
        match self.mutating()? {
            None => self.inner.rename(from, to),
            Some(mut rng) => {
                if rng.gen_bool(0.5) {
                    let _ = self.inner.rename(from, to);
                }
                Err(self.crash_err())
            }
        }
    }

    fn replace(&self, from: &str, to: &str) -> Result<(), VfsError> {
        match self.mutating()? {
            None => self.inner.replace(from, to),
            Some(mut rng) => {
                if rng.gen_bool(0.5) {
                    let _ = self.inner.replace(from, to);
                }
                Err(self.crash_err())
            }
        }
    }

    fn create_dir_all(&self, path: &str) -> Result<(), VfsError> {
        match self.mutating()? {
            None => self.inner.create_dir_all(path),
            Some(mut rng) => {
                if rng.gen_bool(0.5) {
                    let _ = self.inner.create_dir_all(path);
                }
                Err(self.crash_err())
            }
        }
    }

    fn list_dir(&self, path: &str) -> Result<Vec<DirEntry>, VfsError> {
        self.check_poisoned()?;
        self.inner.list_dir(path)
    }

    fn exists(&self, path: &str) -> bool {
        // a crashed process can no longer observe anything
        if self.state.lock().poisoned {
            return false;
        }
        self.inner.exists(path)
    }

    fn stats(&self) -> &MetaStats {
        self.inner.stats()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::MemFs;
    use bistro_base::SimClock;

    fn mem() -> Arc<MemFs> {
        MemFs::shared(SimClock::new())
    }

    #[test]
    fn counting_mode_is_transparent() {
        let inner = mem();
        let fs = FaultStore::counting(inner.clone());
        fs.write("a/b.csv", b"hello").unwrap();
        fs.append("a/b.csv", b" world").unwrap();
        fs.rename("a/b.csv", "a/c.csv").unwrap();
        assert_eq!(fs.read("a/c.csv").unwrap(), b"hello world");
        assert_eq!(fs.mutation_ops(), 3);
        assert_eq!(fs.read_ops(), 1);
        assert!(!fs.crashed());
    }

    #[test]
    fn crash_tears_write_then_poisons() {
        let inner = mem();
        let fs = FaultStore::armed(inner.clone(), 0xBEEF, 1);
        fs.write("one", b"11111111").unwrap();
        let err = fs.write("two", b"22222222").unwrap_err();
        assert!(matches!(err, VfsError::Io(_)));
        assert!(fs.crashed());
        // everything afterwards errors; exists() goes dark
        assert!(fs.write("three", b"x").is_err());
        assert!(fs.read("one").is_err());
        assert!(!fs.exists("one"));
        // the inner store survives with a torn (prefix) second file
        assert_eq!(inner.read("one").unwrap(), b"11111111");
        if inner.exists("two") {
            let torn = inner.read("two").unwrap();
            assert!(torn.len() <= 8);
            assert_eq!(&b"22222222"[..torn.len()], &torn[..]);
        }
    }

    #[test]
    fn crash_is_replayable_bit_for_bit() {
        let render = |seed: u64, crash_op: u64| -> String {
            let inner = mem();
            let fs = FaultStore::armed(inner.clone(), seed, crash_op);
            for i in 0..6 {
                let _ = fs.write(&format!("f{i}"), format!("payload-{i}-xyzzy").as_bytes());
            }
            let _ = fs.rename("f0", "g0");
            let mut out = String::new();
            for path in crate::walk_files(inner.as_ref(), "").unwrap() {
                let data = inner.read(&path).unwrap();
                out.push_str(&format!(
                    "{path}={}:{}\n",
                    data.len(),
                    bistro_base::crc32(&data)
                ));
            }
            out
        };
        for crash_op in 0..7 {
            let a = render(0x5EED, crash_op);
            let b = render(0x5EED, crash_op);
            assert_eq!(a, b, "crash_op {crash_op} not deterministic");
        }
        // different seeds may land different tears, but must each replay
        let a = render(1, 3);
        let b = render(1, 3);
        assert_eq!(a, b);
    }

    #[test]
    fn metadata_op_crash_applies_or_not_by_seed() {
        // sweep seeds: both outcomes (rename applied / not applied) occur
        let mut applied = 0;
        let mut dropped = 0;
        for seed in 0..32 {
            let inner = mem();
            let fs = FaultStore::armed(inner.clone(), seed, 1);
            fs.write("src", b"x").unwrap();
            assert!(fs.rename("src", "dst").is_err());
            match (inner.exists("src"), inner.exists("dst")) {
                (false, true) => applied += 1,
                (true, false) => dropped += 1,
                other => panic!("rename neither applied nor dropped: {other:?}"),
            }
        }
        assert!(applied > 0 && dropped > 0);
    }

    #[test]
    fn one_shot_read_fault_is_transient() {
        let inner = mem();
        let fs = FaultStore::with_read_fault(inner.clone(), 1);
        fs.write("f", b"abc").unwrap();
        assert_eq!(fs.read("f").unwrap(), b"abc"); // read op 0
        assert!(fs.read("f").is_err()); // read op 1: faulted
        assert!(fs.read_faulted());
        assert_eq!(fs.read("f").unwrap(), b"abc"); // recovered
        assert!(!fs.crashed());
        fs.write("g", b"still writable").unwrap();
    }
}
