//! Microbenchmarks over the hot kernels of every experiment: pattern
//! matching and classification (E11), generalization and similarity
//! (E8/E9), WAL append and queue computation (E2/E5), compression
//! codecs, batch processing (E4), the scheduling engine (E6/E7), and the
//! telemetry record path (enabled vs no-op registry).
//!
//! Runs on the in-tree harness (`bistro_bench::harness`) — no external
//! benchmarking crate — and writes `BENCH_micro.json` at the repo root
//! alongside the other committed medians.

use std::sync::Arc;

use bistro_base::{FileId, SimClock, TimePoint, TimeSpan};
use bistro_bench::harness::{BatchSize, Criterion, Throughput};
use bistro_bench::{e4_batching, e6_scheduling};
use bistro_compress::Codec;
use bistro_config::{parse_config, BatchSpec};
use bistro_core::Classifier;
use bistro_pattern::{generalize, pattern_similarity, Pattern};
use bistro_receipts::ReceiptStore;
use bistro_transport::Batcher;
use bistro_vfs::{FaultStore, FileStore, MemFs};

fn bench_pattern_match(c: &mut Criterion) {
    let pat = Pattern::parse("MEMORY_POLLER%i_%Y%m%d%H_%M.csv.gz").unwrap();
    let hit = "MEMORY_POLLER12_2010092504_51.csv.gz";
    let miss = "MEMORY_POLLER12_2010092504_51.csv.bz2";
    let mut g = c.benchmark_group("pattern_match");
    g.bench_function("hit", |b| {
        b.iter(|| pat.match_str(std::hint::black_box(hit)))
    });
    g.bench_function("miss", |b| {
        b.iter(|| pat.match_str(std::hint::black_box(miss)))
    });
    g.finish();
}

fn bench_classifier(c: &mut Criterion) {
    let mut src = String::new();
    for i in 0..250 {
        src.push_str(&format!(
            "feed F{i} {{ pattern \"KIND{i}_poller%i_%Y%m%d%H%M.csv\"; }}\n"
        ));
    }
    let cfg = parse_config(&src).unwrap();
    let classifier = Classifier::compile(&cfg);
    let mut g = c.benchmark_group("classifier_250_feeds");
    g.throughput(Throughput::Elements(1));
    g.bench_function("hit", |b| {
        b.iter(|| classifier.classify(std::hint::black_box("KIND137_poller3_201009250455.csv")))
    });
    g.bench_function("miss", |b| {
        b.iter(|| classifier.classify(std::hint::black_box("NOPE_poller3_201009250455.csv")))
    });
    g.finish();
}

fn bench_generalize_similarity(c: &mut Criterion) {
    let name = "TRAP_2010030817_UVIPTV-PER-BAN-DSPS-IPTV_MOM-rcsntxsqlcv122_9234SEC_klpi.txt";
    let feed = Pattern::parse("TRAP__%Y%m%d_DCTAGN_klpi.txt").unwrap();
    let file_pat = generalize(name).to_pattern();
    let mut g = c.benchmark_group("analyzer");
    g.bench_function("generalize", |b| {
        b.iter(|| generalize(std::hint::black_box(name)))
    });
    g.bench_function("pattern_similarity", |b| {
        b.iter(|| pattern_similarity(std::hint::black_box(&feed), std::hint::black_box(&file_pat)))
    });
    g.finish();
}

fn bench_wal_and_queue(c: &mut Criterion) {
    let mut g = c.benchmark_group("receipts");
    g.bench_function("arrival_append", |b| {
        let store = MemFs::shared(SimClock::new());
        let db = ReceiptStore::open(store as Arc<dyn FileStore>, "r").unwrap();
        let mut i = 0u64;
        b.iter(|| {
            i += 1;
            db.record_arrival(
                "MEMORY_poller1_20100925.gz",
                "F/MEMORY_poller1_20100925.gz",
                100_000,
                TimePoint::from_secs(i),
                None,
                vec!["F".to_string()],
            )
            .unwrap()
        })
    });
    g.bench_function("pending_queue_10k_files", |b| {
        let store = MemFs::shared(SimClock::new());
        let db = ReceiptStore::open(store as Arc<dyn FileStore>, "r").unwrap();
        for i in 0..10_000u64 {
            let id = db
                .record_arrival(
                    &format!("f{i}.csv"),
                    &format!("F/f{i}.csv"),
                    100,
                    TimePoint::from_secs(i),
                    None,
                    vec!["F".to_string()],
                )
                .unwrap();
            if i % 2 == 0 {
                db.record_delivery(id, "sub", TimePoint::from_secs(i))
                    .unwrap();
            }
        }
        let feeds = vec!["F".to_string()];
        b.iter(|| db.pending_for("sub", std::hint::black_box(&feeds)))
    });
    g.finish();
}

fn bench_compression(c: &mut Criterion) {
    let payload: Vec<u8> = {
        let row = b"1285372800,router_042,memory,563412\n";
        row.iter().copied().cycle().take(100_000).collect()
    };
    let mut g = c.benchmark_group("compress_100kb_csv");
    g.throughput(Throughput::Bytes(payload.len() as u64));
    for codec in [Codec::Rle, Codec::Lzss] {
        g.bench_function(format!("{codec}_compress"), |b| {
            b.iter(|| codec.compress(std::hint::black_box(&payload)))
        });
        let compressed = codec.compress(&payload);
        g.bench_function(format!("{codec}_decompress"), |b| {
            b.iter(|| codec.decompress(std::hint::black_box(&compressed)).unwrap())
        });
    }
    g.finish();
}

fn bench_batching(c: &mut Criterion) {
    let mut g = c.benchmark_group("batching");
    g.bench_function("hybrid_on_file", |b| {
        b.iter_batched(
            || {
                Batcher::new(BatchSpec {
                    count: Some(3),
                    window: Some(TimeSpan::from_mins(5)),
                })
            },
            |mut batcher| {
                for i in 0..30u64 {
                    std::hint::black_box(batcher.on_file(FileId(i), TimePoint::from_secs(i)));
                }
            },
            BatchSize::SmallInput,
        )
    });
    g.bench_function("e4_policy_replay", |b| {
        b.iter(|| e4_batching::run(std::hint::black_box(&[0.1])))
    });
    g.finish();
}

fn bench_scheduler(c: &mut Criterion) {
    let mut g = c.benchmark_group("scheduler");
    g.sample_size(20);
    g.bench_function("e6_full_sweep", |b| b.iter(e6_scheduling::run));
    g.finish();
}

fn bench_telemetry(c: &mut Criterion) {
    // record cost through an enabled registry vs the no-op baseline —
    // the number that justifies always-on instrumentation in the server
    let enabled = bistro_telemetry::Registry::new();
    let disabled = bistro_telemetry::Registry::disabled();
    let mut g = c.benchmark_group("telemetry");
    g.throughput(Throughput::Elements(1));
    for (label, reg) in [("enabled", &enabled), ("disabled", &disabled)] {
        let counter = reg.counter("bench.counter");
        g.bench_function(format!("counter_inc_{label}"), |b| {
            b.iter(|| std::hint::black_box(&counter).inc())
        });
        let hist = reg.histogram("bench.hist");
        let mut v = 0u64;
        g.bench_function(format!("histogram_record_{label}"), |b| {
            b.iter(|| {
                v = v
                    .wrapping_mul(6364136223846793005)
                    .wrapping_add(1442695040888963407);
                hist.record(std::hint::black_box(v >> 40));
            })
        });
    }
    g.finish();
}

fn bench_fault_store(c: &mut Criterion) {
    // pass-through cost of the crash-point injection wrapper: the sweep
    // in tests/crash_points.rs runs hundreds of pipeline incarnations
    // through it, so op accounting must stay cheap next to the real I/O
    let clock = SimClock::new();
    let raw = MemFs::shared(clock.clone());
    let wrapped = FaultStore::counting(MemFs::shared(clock.clone()));
    let data = vec![0xA5u8; 1024];
    let mut g = c.benchmark_group("fault_store");
    g.throughput(Throughput::Bytes(data.len() as u64));
    g.bench_function("memfs_write_1k", |b| b.iter(|| raw.write("f", &data)));
    g.bench_function("wrapped_write_1k", |b| b.iter(|| wrapped.write("f", &data)));
    g.finish();
}

fn main() {
    let mut c = Criterion::new();
    bench_pattern_match(&mut c);
    bench_classifier(&mut c);
    bench_generalize_similarity(&mut c);
    bench_wal_and_queue(&mut c);
    bench_compression(&mut c);
    bench_batching(&mut c);
    bench_scheduler(&mut c);
    bench_telemetry(&mut c);
    bench_fault_store(&mut c);
    c.print_summary();
    // cargo bench runs with the package as cwd; anchor the output at the
    // repo root where the other BENCH_*.json medians live
    let out = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_micro.json");
    c.write_json(out).expect("write BENCH_micro.json");
    println!("\nwrote {out}");
}
