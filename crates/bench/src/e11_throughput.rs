//! E11 — deployment-scale throughput (§1, §7).
//!
//! Claim: "Bistro servers currently manage over 100 data feeds,
//! delivering up to 300 gigabytes of data per day to a number of
//! customers in real-time." 300 GB/day ≈ 3.6 MB/s sustained; a
//! reproduction must show comfortable headroom on a laptop.
//!
//! We measure (a) classifier throughput (files/s) as the number of
//! registered feeds grows, and (b) end-to-end server ingest+delivery
//! throughput in MB/s, then report the headroom over the paper's rate.

use crate::harness::{time_fn, BatchSize, BenchResult, Criterion, Throughput};
use crate::table::Table;
use bistro_base::{SimClock, TimePoint};
use bistro_config::{parse_config, Config};
use bistro_core::{Classifier, Server};
use bistro_vfs::MemFs;
use std::time::Instant;

/// Classifier scaling point.
#[derive(Clone, Debug)]
pub struct ClassifyPoint {
    /// Registered feeds.
    pub feeds: usize,
    /// Classifications per second (matching files).
    pub hits_per_sec: f64,
    /// Classifications per second (non-matching files — full miss cost).
    pub misses_per_sec: f64,
}

fn config_with_feeds(n: usize) -> Config {
    let mut src = String::new();
    for i in 0..n {
        src.push_str(&format!(
            "feed F{i} {{ pattern \"KIND{i}_poller%i_%Y%m%d%H%M.csv\"; }}\n"
        ));
    }
    src.push_str("subscriber wh { endpoint \"wh\"; subscribe F0; }\n");
    parse_config(&src).unwrap()
}

/// Measure classifier throughput at several feed counts.
pub fn run_classifier(feed_counts: &[usize]) -> Vec<ClassifyPoint> {
    let mut out = Vec::new();
    for &n in feed_counts {
        let cfg = config_with_feeds(n);
        let classifier = Classifier::compile(&cfg);
        let hits: Vec<String> = (0..2_000)
            .map(|i| {
                format!(
                    "KIND{}_poller{}_20100925{:02}{:02}.csv",
                    i % n,
                    i % 7,
                    i % 24,
                    i % 60
                )
            })
            .collect();
        let misses: Vec<String> = (0..2_000)
            .map(|i| format!("UNKNOWN{}_thing_{i}.dat", i % 50))
            .collect();

        let t0 = Instant::now();
        let mut matched = 0usize;
        for name in &hits {
            matched += classifier.classify(name).len();
        }
        let hit_rate = hits.len() as f64 / t0.elapsed().as_secs_f64();
        assert_eq!(matched, hits.len());

        let t0 = Instant::now();
        for name in &misses {
            assert!(classifier.classify(name).is_empty());
        }
        let miss_rate = misses.len() as f64 / t0.elapsed().as_secs_f64();
        out.push(ClassifyPoint {
            feeds: n,
            hits_per_sec: hit_rate,
            misses_per_sec: miss_rate,
        });
    }
    out
}

/// End-to-end ingest point.
#[derive(Clone, Debug)]
pub struct IngestPoint {
    /// Files ingested.
    pub files: usize,
    /// Average file size (bytes).
    pub file_size: usize,
    /// Ingest+delivery throughput in MB/s (wall clock).
    pub mb_per_sec: f64,
    /// Files per second.
    pub files_per_sec: f64,
    /// Headroom over the paper's 300 GB/day (≈3.6 MB/s).
    pub headroom: f64,
}

/// Measure end-to-end server throughput.
pub fn run_ingest(files: usize, file_size: usize) -> IngestPoint {
    let clock = SimClock::starting_at(TimePoint::from_secs(1_285_372_800));
    let store = MemFs::shared(clock.clone());
    let cfg = config_with_feeds(100);
    let mut server = Server::new("b", cfg, clock.clone(), store).unwrap();
    let payload = vec![b'x'; file_size];

    let names: Vec<String> = (0..files)
        .map(|i| {
            format!(
                "KIND{}_poller{}_20100925{:02}{:02}.csv",
                i % 100,
                i % 7,
                (i / 60) % 24,
                i % 60
            )
        })
        .collect();
    let t0 = Instant::now();
    for name in &names {
        server.deposit(name, &payload).unwrap();
    }
    let secs = t0.elapsed().as_secs_f64();
    let mb = (files * file_size) as f64 / 1e6;
    let paper_rate = 300_000.0 / 86_400.0; // MB/s for 300 GB/day
    IngestPoint {
        files,
        file_size,
        mb_per_sec: mb / secs,
        files_per_sec: files as f64 / secs,
        headroom: (mb / secs) / paper_rate,
    }
}

/// Harness-measured classification latency (median/p95 + files/sec)
/// at `feeds` registered feeds, for the `BENCH_classify.json`
/// trajectory file.
pub fn bench_classify(feeds: usize, samples: usize) -> Vec<BenchResult> {
    let cfg = config_with_feeds(feeds);
    let classifier = Classifier::compile(&cfg);
    let group = format!("classify_{feeds}_feeds");
    let hit = time_fn(
        &group,
        "hit",
        samples,
        Some(Throughput::Elements(1)),
        || {
            std::hint::black_box(
                classifier.classify(std::hint::black_box("KIND137_poller3_201009250455.csv")),
            );
        },
    );
    let miss = time_fn(
        &group,
        "miss",
        samples,
        Some(Throughput::Elements(1)),
        || {
            std::hint::black_box(
                classifier.classify(std::hint::black_box("NOPE_poller3_201009250455.csv")),
            );
        },
    );
    vec![hit, miss]
}

/// Untimed allocator warmup: deposit `files` files of `file_size`
/// bytes into a throwaway server, then drop it. A deposit *retains*
/// its bytes in the MemFs, so the measured server always allocates at
/// the fresh heap frontier — where a cold process pays a kernel page
/// fault per new page. Dropping the throwaway hands its whole
/// footprint to the allocator's free lists, so the timed phase
/// recycles already-faulted pages instead. A full run gets this for
/// free from its earlier phases (`run_ingest` retires a ~300 MB
/// server before the harness benches start); a `--quick` run must do
/// it explicitly or the perf gate compares a cold process against
/// warm committed medians.
fn warm_allocator(files: u64, file_size: usize) {
    let clock = SimClock::starting_at(TimePoint::from_secs(1_285_372_800));
    let store = MemFs::shared(clock.clone());
    let mut server = Server::new("warm", config_with_feeds(100), clock, store).unwrap();
    let payload = vec![b'x'; file_size];
    for n in 0..files {
        let name = format!(
            "KIND{}_poller{}_20100925{:02}{:02}.csv",
            n % 100,
            n % 7,
            (n / 60) % 24,
            n % 60
        );
        server.deposit(&name, &payload).unwrap();
    }
}

/// Harness-measured end-to-end per-file deposit latency (classify +
/// normalize + stage + receipts + delivery) on a 100-feed server, for
/// the `BENCH_throughput.json` trajectory file.
pub fn bench_ingest(file_size: usize, samples: usize) -> Vec<BenchResult> {
    warm_allocator(2_048, file_size);
    let clock = SimClock::starting_at(TimePoint::from_secs(1_285_372_800));
    let store = MemFs::shared(clock.clone());
    let cfg = config_with_feeds(100);
    let mut server = Server::new("b", cfg, clock.clone(), store).unwrap();
    let payload = vec![b'x'; file_size];
    let mut i = 0u64;
    // short in-place warmup for the measured server's own code paths
    for _ in 0..64 {
        i += 1;
        let name = format!(
            "KIND{}_poller{}_20100925{:02}{:02}.csv",
            i % 100,
            i % 7,
            (i / 60) % 24,
            i % 60
        );
        server.deposit(&name, &payload).unwrap();
    }
    let deposit = time_fn(
        "server_ingest_100_feeds",
        &format!("deposit_{file_size}b"),
        samples,
        // Elements(1): per_sec is files/sec (bytes/sec = files/sec × size)
        Some(Throughput::Elements(1)),
        || {
            i += 1;
            let name = format!(
                "KIND{}_poller{}_20100925{:02}{:02}.csv",
                i % 100,
                i % 7,
                (i / 60) % 24,
                i % 60
            );
            server.deposit(&name, &payload).unwrap();
        },
    );
    vec![deposit]
}

/// Harness-measured batch ingest on a 100-feed server with the
/// classify + normalize stage fanned across `workers` pool threads
/// (`Server::deposit_batch`), for the `server_ingest_100_feeds/par{N}`
/// scaling groups in `BENCH_throughput.json`. Each iteration deposits a
/// 64-file batch; throughput is reported in files/sec.
///
/// Timed via `iter_batched`: constructing the 64×`file_size` input
/// batch (a multi-megabyte memcpy) happens in the untimed setup phase,
/// so the medians measure the ingest pipeline itself — classify +
/// normalize + stage + group-committed receipts + delivery — and
/// before/after comparisons aren't polluted by input-generation cost.
pub fn bench_ingest_parallel(file_size: usize, samples: usize, workers: usize) -> BenchResult {
    const BATCH: usize = 64;
    // see `warm_allocator`: the timed phase must recycle faulted pages
    warm_allocator(4_096, file_size);
    let clock = SimClock::starting_at(TimePoint::from_secs(1_285_372_800));
    let store = MemFs::shared(clock.clone());
    let cfg = config_with_feeds(100);
    let mut server = Server::new("b", cfg, clock.clone(), store)
        .unwrap()
        .with_workers(workers);
    let payload = vec![b'x'; file_size];
    let mut i = 0u64;
    // short in-place warmup for the measured server's own code paths
    for _ in 0..4 {
        let base = i;
        i += BATCH as u64;
        let files: Vec<(String, Vec<u8>)> = (0..BATCH as u64)
            .map(|k| {
                let n = base + k;
                (
                    format!(
                        "KIND{}_poller{}_20100925{:02}{:02}.csv",
                        n % 100,
                        n % 7,
                        (n / 60) % 24,
                        n % 60
                    ),
                    payload.clone(),
                )
            })
            .collect();
        server.deposit_batch(files).unwrap();
    }
    let mut c = Criterion::new();
    {
        let mut g = c.benchmark_group("server_ingest_100_feeds");
        g.sample_size(samples);
        g.throughput(Throughput::Elements(BATCH as u64));
        g.bench_function(format!("par{workers}"), |b| {
            b.iter_batched(
                || {
                    let base = i;
                    i += BATCH as u64;
                    (0..BATCH as u64)
                        .map(|k| {
                            let n = base + k;
                            (
                                format!(
                                    "KIND{}_poller{}_20100925{:02}{:02}.csv",
                                    n % 100,
                                    n % 7,
                                    (n / 60) % 24,
                                    n % 60
                                ),
                                payload.clone(),
                            )
                        })
                        .collect::<Vec<(String, Vec<u8>)>>()
                },
                |files| server.deposit_batch(files).unwrap(),
                BatchSize::LargeInput,
            )
        });
        g.finish();
    }
    c.results()[0].clone()
}

/// How one gated benchmark compared against the committed baseline.
#[derive(Clone, Debug)]
pub struct GateLine {
    /// `group/name` of the compared benchmark.
    pub bench: String,
    /// Current median, ns.
    pub current_ns: f64,
    /// Baseline median, ns.
    pub baseline_ns: f64,
    /// `current / baseline` — above the gate factor means regression.
    pub ratio: f64,
}

/// Compare `current` results against a committed `bistro-bench-v1`
/// baseline document, matching `server_ingest_100_feeds` entries by
/// name. See [`gate_in_group`] for the comparison rules.
pub fn gate_against_baseline(
    baseline_json: &str,
    current: &[BenchResult],
) -> Result<Vec<GateLine>, String> {
    gate_in_group(baseline_json, "server_ingest_100_feeds", current)
}

/// Compare `current` results against a committed `bistro-bench-v1`
/// baseline document, matching entries of `group` by name. Returns one
/// [`GateLine`] per comparable entry; entries present on only one side
/// are skipped (the gate must not fail just because a baseline predates
/// a newly added benchmark). `Err` means the baseline is unusable or
/// nothing was comparable — the gate should fail loudly rather than
/// silently pass.
pub fn gate_in_group(
    baseline_json: &str,
    group: &str,
    current: &[BenchResult],
) -> Result<Vec<GateLine>, String> {
    let doc = crate::json::Json::parse(baseline_json)
        .map_err(|e| format!("baseline does not parse: {e}"))?;
    if doc.get("schema").and_then(crate::json::Json::as_str) != Some("bistro-bench-v1") {
        return Err("baseline is not a bistro-bench-v1 document".to_string());
    }
    let results = doc
        .get("results")
        .and_then(crate::json::Json::as_arr)
        .ok_or("baseline has no results array")?;
    let mut baseline = std::collections::BTreeMap::new();
    for r in results {
        let rgroup = r.get("group").and_then(crate::json::Json::as_str);
        let name = r.get("name").and_then(crate::json::Json::as_str);
        let median = r.get("median_ns").and_then(crate::json::Json::as_num);
        if let (Some(rgroup), Some(name), Some(median)) = (rgroup, name, median) {
            if rgroup == group && median > 0.0 {
                baseline.insert(name.to_string(), median);
            }
        }
    }
    let lines: Vec<GateLine> = current
        .iter()
        .filter(|r| r.group == group)
        .filter_map(|r| {
            baseline.get(&r.name).map(|&base| GateLine {
                bench: format!("{}/{}", r.group, r.name),
                current_ns: r.median_ns,
                baseline_ns: base,
                ratio: r.median_ns / base,
            })
        })
        .collect();
    if lines.is_empty() {
        return Err(format!("no comparable {group} entries in baseline"));
    }
    Ok(lines)
}

/// Render both tables.
pub fn tables(classify: &[ClassifyPoint], ingest: &IngestPoint) -> (Table, Table) {
    let mut t1 = Table::new(
        "E11a: classifier throughput vs registered feed count",
        &["feeds", "matching files/s", "unmatched files/s"],
    );
    for p in classify {
        t1.row(vec![
            p.feeds.to_string(),
            format!("{:.0}", p.hits_per_sec),
            format!("{:.0}", p.misses_per_sec),
        ]);
    }
    let mut t2 = Table::new(
        "E11b: end-to-end ingest + delivery throughput (100 feeds)",
        &[
            "files",
            "file size",
            "MB/s",
            "files/s",
            "headroom over 300 GB/day",
        ],
    );
    t2.row(vec![
        ingest.files.to_string(),
        ingest.file_size.to_string(),
        format!("{:.1}", ingest.mb_per_sec),
        format!("{:.0}", ingest.files_per_sec),
        format!("{:.0}x", ingest.headroom),
    ]);
    (t1, t2)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn classifier_scales_to_hundreds_of_feeds() {
        let points = run_classifier(&[10, 100]);
        for p in &points {
            assert!(p.hits_per_sec > 10_000.0, "classification too slow: {p:?}");
        }
    }

    #[test]
    fn ingest_beats_paper_rate() {
        let p = run_ingest(2_000, 50_000);
        assert!(p.headroom > 1.0, "must exceed 300 GB/day: {p:?}");
    }

    #[test]
    fn parallel_ingest_bench_runs_at_every_width() {
        for workers in [1, 2, 4] {
            let r = bench_ingest_parallel(10_000, 3, workers);
            assert_eq!(r.name, format!("par{workers}"));
            assert!(r.median_ns > 0.0, "{r:?}");
        }
    }

    fn fake_result(name: &str, median_ns: f64) -> BenchResult {
        BenchResult {
            group: "server_ingest_100_feeds".to_string(),
            name: name.to_string(),
            iters_per_sample: 1,
            samples: 5,
            median_ns,
            p95_ns: median_ns,
            mean_ns: median_ns,
            min_ns: median_ns,
            max_ns: median_ns,
            throughput: Some(Throughput::Elements(1)),
        }
    }

    #[test]
    fn gate_compares_matching_entries_and_flags_regressions() {
        let baseline = crate::harness::results_to_json(&[
            fake_result("deposit_60000b", 20_000.0),
            fake_result("par1", 1_000_000.0),
            fake_result("only_in_baseline", 5.0),
        ]);
        let current = vec![
            fake_result("deposit_60000b", 50_000.0), // 2.5x — regression
            fake_result("par1", 900_000.0),          // improvement
            fake_result("par8", 1.0),                // no baseline: skipped
        ];
        let lines = gate_against_baseline(&baseline, &current).unwrap();
        assert_eq!(lines.len(), 2);
        let worst = lines
            .iter()
            .find(|l| l.bench.ends_with("deposit_60000b"))
            .unwrap();
        assert!((worst.ratio - 2.5).abs() < 1e-9);
        assert!(worst.ratio > 2.0, "regression must exceed the gate factor");
        let ok = lines.iter().find(|l| l.bench.ends_with("par1")).unwrap();
        assert!(ok.ratio < 1.0);
    }

    #[test]
    fn gate_rejects_unusable_baselines() {
        assert!(gate_against_baseline("not json", &[fake_result("par1", 1.0)]).is_err());
        assert!(gate_against_baseline(
            "{\"schema\":\"other\",\"results\":[]}",
            &[fake_result("par1", 1.0)]
        )
        .is_err());
        // a valid document with nothing comparable must fail loudly
        let baseline = crate::harness::results_to_json(&[fake_result("elsewhere", 1.0)]);
        assert!(gate_against_baseline(&baseline, &[fake_result("par1", 1.0)]).is_err());
    }
}
