//! E9 — false-negative detection: edit distance vs generalized-pattern
//! similarity (§5.2).
//!
//! Claims: "our experience shows that false negatives can exhibit a very
//! large edit distance" (the TRAP example: distance 51 > the length of
//! the common parts); Bistro instead generalizes the unmatched file and
//! compares *patterns*, with "significant reduction in the number of
//! warning messages … since a warning is only generated once for each
//! generalized file pattern".
//!
//! We synthesize four drift scenarios plus genuinely unrelated noise,
//! then score both detectors on detection rate and false alarms, and
//! count warnings emitted.

use crate::table::Table;
use bistro_analyzer::FnDetector;
use bistro_pattern::Pattern;

/// The registered feeds.
fn feeds() -> Vec<(String, Vec<Pattern>)> {
    vec![
        (
            "SNMP/MEMORY".to_string(),
            vec![Pattern::parse("MEMORY_poller%i_%Y%m%d.gz").unwrap()],
        ),
        (
            "SNMP/CPU".to_string(),
            vec![Pattern::parse("CPU_POLL%i_%Y%m%d%H%M.txt").unwrap()],
        ),
        (
            "TRAPS".to_string(),
            vec![Pattern::parse("TRAP__%Y%m%d_DCTAGN_klpi.txt").unwrap()],
        ),
    ]
}

/// A drift scenario: unmatched files + the feed they truly belong to
/// (`None` for unrelated noise).
pub struct Scenario {
    /// Scenario label.
    pub name: &'static str,
    /// The drifted/unrelated filenames.
    pub files: Vec<String>,
    /// The ground-truth feed.
    pub truth: Option<&'static str>,
}

/// Build the drift scenarios.
pub fn scenarios() -> Vec<Scenario> {
    vec![
        Scenario {
            name: "capitalization drift (poller→Poller)",
            files: (20..28)
                .map(|d| format!("MEMORY_Poller1_201009{d}.gz"))
                .collect(),
            truth: Some("SNMP/MEMORY"),
        },
        Scenario {
            name: "new naming convention (POLL→POLLER, .txt→.log)",
            files: (0..8)
                .map(|h| format!("CPU_POLLER3_20100925{h:02}00.log"))
                .collect(),
            truth: Some("SNMP/CPU"),
        },
        Scenario {
            name: "paper TRAP example (edit distance 51)",
            files: vec![
                "TRAP_2010030817_UVIPTV-PER-BAN-DSPS-IPTV_MOM-rcsntxsqlcv122_9234SEC_klpi.txt"
                    .to_string(),
            ],
            truth: Some("TRAPS"),
        },
        Scenario {
            name: "unrelated noise",
            files: (0..8).map(|i| format!("syslog_backup_{i}.tar")).collect(),
            truth: None,
        },
        Scenario {
            name: "structurally identical different feed (BPS files)",
            files: (20..28)
                .map(|d| format!("BPS_poller1_201009{d}.gz"))
                .collect(),
            truth: None, // BPS is NOT any of the registered feeds
        },
    ]
}

/// One detector's score on one scenario.
#[derive(Clone, Debug)]
pub struct Point {
    /// Scenario label.
    pub scenario: String,
    /// Ground truth feed (or "-").
    pub truth: String,
    /// Files in the scenario.
    pub files: usize,
    /// Edit-distance detector (threshold 10): feed it flagged, if any.
    pub edit_flags: String,
    /// Bistro similarity detector: feed it flagged, if any (+ score).
    pub bistro_flags: String,
    /// Warnings emitted by Bistro for the scenario (dedup check).
    pub bistro_warnings: usize,
    /// Did Bistro get it right (flagged the true feed / stayed silent)?
    pub bistro_correct: bool,
    /// Did edit distance get it right?
    pub edit_correct: bool,
}

/// Run all scenarios through both detectors.
pub fn run(edit_threshold: usize) -> Vec<Point> {
    let mut out = Vec::new();
    for sc in scenarios() {
        let mut det = FnDetector::new(feeds());
        for f in &sc.files {
            det.observe(f);
        }
        let warnings = det.warnings();
        let bistro_flag = warnings.first().map(|w| (w.feed.clone(), w.similarity));

        // edit-distance strawman: per file, flag the closest feed within
        // the threshold
        let mut edit_flag: Option<String> = None;
        for f in &sc.files {
            if let Some((feed, _)) = det.edit_distance_candidates(f, edit_threshold).first() {
                edit_flag = Some(feed.clone());
                break;
            }
        }

        let bistro_correct = match (&sc.truth, &bistro_flag) {
            (Some(t), Some((f, _))) => t == f,
            (None, None) => true,
            _ => false,
        };
        let edit_correct = match (&sc.truth, &edit_flag) {
            (Some(t), Some(f)) => t == f,
            (None, None) => true,
            _ => false,
        };

        out.push(Point {
            scenario: sc.name.to_string(),
            truth: sc.truth.unwrap_or("-").to_string(),
            files: sc.files.len(),
            edit_flags: edit_flag.unwrap_or_else(|| "-".to_string()),
            bistro_flags: bistro_flag
                .map(|(f, s)| format!("{f} ({s:.2})"))
                .unwrap_or_else(|| "-".to_string()),
            bistro_warnings: warnings.len(),
            bistro_correct,
            edit_correct,
        });
    }
    out
}

/// Render the experiment table.
pub fn table(points: &[Point], edit_threshold: usize) -> Table {
    let mut t = Table::new(
        &format!("E9: false-negative detection — edit distance (≤{edit_threshold}) vs generalized-pattern similarity"),
        &[
            "scenario",
            "truth",
            "files",
            "edit-distance flags",
            "bistro flags",
            "bistro warnings",
            "edit ok",
            "bistro ok",
        ],
    );
    for p in points {
        t.row(vec![
            p.scenario.clone(),
            p.truth.clone(),
            p.files.to_string(),
            p.edit_flags.clone(),
            p.bistro_flags.clone(),
            p.bistro_warnings.to_string(),
            p.edit_correct.to_string(),
            p.bistro_correct.to_string(),
        ]);
    }
    t
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bistro_beats_edit_distance() {
        let points = run(10);
        let bistro_score: usize = points.iter().filter(|p| p.bistro_correct).count();
        let edit_score: usize = points.iter().filter(|p| p.edit_correct).count();
        assert!(
            bistro_score > edit_score,
            "bistro {bistro_score}/{} vs edit {edit_score}/{}: {points:#?}",
            points.len(),
            points.len()
        );
        // the TRAP scenario specifically: edit distance misses, Bistro hits
        let trap = points.iter().find(|p| p.scenario.contains("TRAP")).unwrap();
        assert!(trap.bistro_correct && !trap.edit_correct, "{trap:?}");
        // warning dedup: many drifted files, ONE warning
        let cap = points
            .iter()
            .find(|p| p.scenario.contains("capitalization"))
            .unwrap();
        assert_eq!(cap.bistro_warnings, 1);
        assert!(cap.files > 1);
    }
}
