//! E2 — rsync/cron stateless sync versus the receipt database (§2.2.2).
//!
//! Claim: "Rsync stores no state about which files were already delivered
//! to which subscriber, instead relying on both local and remote
//! directory scan … As stored history grows larger on both source and
//! destination side, the cost of the directory scan grows linearly and
//! completely dominates the actual data transmission time." Bistro's
//! delivery queue is a receipt-database index scan — no filesystem
//! metadata traffic at all — and recording a new delivery is O(1).

use crate::table::Table;
use bistro_base::{SimClock, TimePoint};
use bistro_core::baselines::rsync_cron_sync;
use bistro_receipts::ReceiptStore;
use bistro_vfs::{FileStore, MemFs};
use std::sync::Arc;
use std::time::Instant;

/// One measured point.
#[derive(Clone, Debug)]
pub struct Point {
    /// Files of synced history.
    pub history: usize,
    /// Metadata ops of one steady-state rsync run (both sides).
    pub rsync_ops: u64,
    /// Wall time of one steady-state rsync run.
    pub rsync_micros: u64,
    /// Wall time for Bistro to compute the (empty) delivery queue.
    pub receipts_micros: u64,
    /// Wall time for Bistro to compute + deliver 100 pending files
    /// (receipt queries + receipt writes).
    pub receipts_delta_micros: u64,
}

/// Run the sweep.
pub fn run(histories: &[usize]) -> Vec<Point> {
    let mut out = Vec::new();
    for &history in histories {
        // --- rsync/cron side ---
        let src = MemFs::shared(SimClock::new());
        for i in 0..history {
            src.write(&format!("staging/F/day{:04}/f{i:06}.csv", i / 100), b"data")
                .unwrap();
        }
        let dst = MemFs::shared(SimClock::new());
        rsync_cron_sync(src.as_ref(), "staging", dst.as_ref(), "mirror").unwrap();
        let before_src = src.stats().snapshot();
        let before_dst = dst.stats().snapshot();
        let t0 = Instant::now();
        rsync_cron_sync(src.as_ref(), "staging", dst.as_ref(), "mirror").unwrap();
        let rsync_micros = t0.elapsed().as_micros() as u64;
        let rsync_ops = src.stats().snapshot().since(&before_src).metadata_ops()
            + dst.stats().snapshot().since(&before_dst).metadata_ops();

        // --- receipt-database side ---
        let store = MemFs::shared(SimClock::new());
        let db = ReceiptStore::open(store.clone() as Arc<dyn FileStore>, "receipts").unwrap();
        for i in 0..history {
            let id = db
                .record_arrival(
                    &format!("f{i:06}.csv"),
                    &format!("F/f{i:06}.csv"),
                    100,
                    TimePoint::from_secs(i as u64),
                    None,
                    vec!["F".to_string()],
                )
                .unwrap();
            db.record_delivery(id, "sub", TimePoint::from_secs(i as u64 + 1))
                .unwrap();
        }
        let feeds = vec!["F".to_string()];
        let t0 = Instant::now();
        let pending = db.pending_for("sub", &feeds);
        let receipts_micros = t0.elapsed().as_micros() as u64;
        assert!(pending.is_empty());

        // now 100 new arrivals: queue computation + delivery receipts
        let t0 = Instant::now();
        for i in 0..100 {
            let id = db
                .record_arrival(
                    &format!("new{i:04}.csv"),
                    &format!("F/new{i:04}.csv"),
                    100,
                    TimePoint::from_secs(1_000_000 + i),
                    None,
                    vec!["F".to_string()],
                )
                .unwrap();
            db.record_delivery(id, "sub", TimePoint::from_secs(1_000_001 + i))
                .unwrap();
        }
        let receipts_delta_micros = t0.elapsed().as_micros() as u64;

        out.push(Point {
            history,
            rsync_ops,
            rsync_micros,
            receipts_micros,
            receipts_delta_micros,
        });
    }
    out
}

/// Render the experiment table.
pub fn table(points: &[Point]) -> Table {
    let mut t = Table::new(
        "E2: steady-state sync cost — rsync/cron vs Bistro receipt DB",
        &[
            "history (files)",
            "rsync metadata ops",
            "rsync time (us)",
            "receipt queue query (us)",
            "deliver 100 new files (us)",
        ],
    );
    for p in points {
        t.row(vec![
            p.history.to_string(),
            p.rsync_ops.to_string(),
            p.rsync_micros.to_string(),
            p.receipts_micros.to_string(),
            p.receipts_delta_micros.to_string(),
        ]);
    }
    t
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rsync_scales_receipts_do_not() {
        let points = run(&[500, 2_000]);
        let ops_ratio = points[1].rsync_ops as f64 / points[0].rsync_ops as f64;
        assert!(
            ops_ratio > 3.0,
            "4x history should ~4x rsync ops, got {ops_ratio:.2}"
        );
        // the receipt queue query never walks history proportionally: the
        // per-subscriber pending set is what's scanned, and it's empty
        assert!(points[1].receipts_micros < points[1].rsync_micros.max(1) * 10);
    }
}
