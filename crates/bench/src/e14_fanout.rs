//! E14 — shared delivery trees at million-subscriber fanout (§3).
//!
//! Claim under test: a relay group turns per-subscriber fanout into
//! per-group fanout. With `G` groups of `M` members each, one deposit
//! costs `G` delivery sends and `G` tracker entries — independent of
//! `M` — and the ack state per outstanding file is a `ceil(M/8)`-byte
//! coverage bitmap instead of `M` per-member retry entries. The
//! experiment drives a server with up to one million grouped
//! subscribers and verifies both the shape (ops and tracker growth
//! follow `G`, not `G×M`) and the wall-clock cost of a deposit.

use crate::harness::{time_fn, BenchResult, Throughput};
use crate::table::Table;
use bistro_base::{SimClock, TimePoint, TimeSpan};
use bistro_config::{
    validate::validate, BatchSpec, Config, DeliveryMode, FeedDef, GroupDef, SubscriberDef,
};
use bistro_core::Server;
use bistro_pattern::Pattern;
use bistro_transport::{LinkSpec, SimNetwork};
use bistro_vfs::MemFs;
use std::sync::Arc;

/// A configuration with one feed, `groups × members` subscribers all
/// subscribed to it, and every subscriber placed in a relay group of
/// `members` — the delivery-tree layout of §3 at parametric scale.
/// Built programmatically (a million-subscriber source file would
/// measure the parser, not the delivery plan) and passed through the
/// same [`validate`] as parsed configurations.
pub fn fanout_config(groups: usize, members: usize) -> Config {
    let mut cfg = Config {
        feeds: vec![FeedDef {
            name: "F".to_string(),
            patterns: vec![Pattern::parse("tick_%i.csv").unwrap()],
            normalize: None,
            compress: Default::default(),
            policy: Default::default(),
            description: None,
        }],
        ..Config::default()
    };
    cfg.subscribers.reserve(groups * members);
    for g in 0..groups {
        let mut names = Vec::with_capacity(members);
        for m in 0..members {
            let name = format!("s{g}_{m}");
            cfg.subscribers.push(SubscriberDef {
                name: name.clone(),
                endpoint: format!("h{g}:{m}"),
                subscriptions: vec!["F".to_string()],
                delivery: DeliveryMode::Push,
                deadline: TimeSpan::from_mins(1),
                batch: BatchSpec::per_file(),
                trigger: None,
                dest: None,
            });
            names.push(name);
        }
        cfg.groups.push(GroupDef {
            name: format!("G{g}"),
            members: names,
            relay: Some(format!("edge{g}")),
        });
    }
    validate(&cfg).expect("generated fanout config must validate");
    cfg
}

fn fanout_server(groups: usize, members: usize) -> (Server, Arc<SimNetwork>) {
    let clock = SimClock::starting_at(TimePoint::from_secs(1_285_372_800));
    let store = MemFs::shared(clock.clone());
    let net = Arc::new(SimNetwork::new(LinkSpec::default()));
    let server = Server::new("hub", fanout_config(groups, members), clock, store)
        .unwrap()
        .with_network(net.clone());
    (server, net)
}

/// Measured shape of group fanout at one `(groups, members)` point.
#[derive(Clone, Debug)]
pub struct FanoutPoint {
    /// Relay groups configured.
    pub groups: usize,
    /// Members per group.
    pub members_per_group: usize,
    /// Total subscribers (`groups × members`).
    pub subscribers: usize,
    /// Network sends per deposit (measured) — must equal `groups`.
    pub ops_per_deposit: usize,
    /// Group-tracker entries per deposit (measured) — must equal
    /// `groups`; a per-member tracker would hold `subscribers`.
    pub tracker_entries_per_deposit: usize,
    /// Coverage-bitmap bytes per deposit across all groups
    /// (`groups × ceil(members/8)`).
    pub bitmap_bytes_per_deposit: usize,
}

/// Deposit `deposits` files at one scale point and measure the fanout
/// shape. Panics if a deposit's delivery cost depends on the member
/// count — that is the regression this experiment exists to catch.
pub fn run_fanout(groups: usize, members: usize, deposits: usize) -> FanoutPoint {
    let (mut server, net) = fanout_server(groups, members);
    let payload = vec![b'x'; 1_000];
    let before = net.messages_sent();
    for i in 0..deposits {
        server.deposit(&format!("tick_{i}.csv"), &payload).unwrap();
    }
    let sent = (net.messages_sent() - before) as usize;
    assert_eq!(
        sent,
        groups * deposits,
        "group delivery must send once per group per deposit"
    );
    assert_eq!(
        server.group_outstanding(),
        groups * deposits,
        "tracker must hold one entry per group per deposit"
    );
    assert_eq!(
        server.stats().deliveries,
        0,
        "grouped members must not receive direct fanout"
    );
    FanoutPoint {
        groups,
        members_per_group: members,
        subscribers: groups * members,
        ops_per_deposit: sent / deposits,
        tracker_entries_per_deposit: server.group_outstanding() / deposits,
        bitmap_bytes_per_deposit: groups * members.div_ceil(8),
    }
}

/// Harness-measured per-deposit latency at one `(groups, members)`
/// point, for the `fanout_group_delivery` group in
/// `BENCH_throughput.json`. Each iteration ingests one fresh file end
/// to end (classify + stage + receipts + `G` group sends); with the
/// inverted delivery index the match step touches only the `G` matched
/// plans, so the same `G` at a larger `M` costs the same CPU — the
/// `fanout_deposit_cost` group below measures exactly that flatness.
pub fn bench_fanout_deposit(groups: usize, members: usize, samples: usize) -> BenchResult {
    let (mut server, _net) = fanout_server(groups, members);
    let payload = vec![b'x'; 1_000];
    let mut i = 0u64;
    // short in-place warmup for the measured code paths
    for _ in 0..2 {
        server.deposit(&format!("tick_{i}.csv"), &payload).unwrap();
        i += 1;
    }
    time_fn(
        "fanout_group_delivery",
        &format!("deposit_g{groups}_m{members}"),
        samples,
        // Elements(1): per_sec is deposits/sec at this scale point
        Some(Throughput::Elements(1)),
        || {
            server.deposit(&format!("tick_{i}.csv"), &payload).unwrap();
            i += 1;
        },
    )
}

/// Group count held fixed while [`bench_deposit_cost`] sweeps the
/// subscriber count: every point matches the same `G` plans per
/// deposit, so any median growth along the sweep is subscriber-count
/// cost leaking back into the deposit path.
pub const DEPOSIT_COST_GROUPS: usize = 100;

/// Per-deposit latency as a function of *total subscriber count* at a
/// fixed group count, for the `fanout_deposit_cost` group in
/// `BENCH_throughput.json`. This is the tentpole claim of the inverted
/// delivery index: the pre-index implementation scanned every
/// subscriber per deposit (`O(subscribers)`, dominating E14 at a
/// million subscribers); the index touches only the `G` matched plans,
/// so medians across this sweep must stay flat from 10k to 1M
/// subscribers. `subscribers` must be a multiple of
/// [`DEPOSIT_COST_GROUPS`].
pub fn bench_deposit_cost(subscribers: usize, samples: usize) -> BenchResult {
    assert_eq!(
        subscribers % DEPOSIT_COST_GROUPS,
        0,
        "subscriber count must divide into {DEPOSIT_COST_GROUPS} groups"
    );
    let members = subscribers / DEPOSIT_COST_GROUPS;
    let (mut server, _net) = fanout_server(DEPOSIT_COST_GROUPS, members);
    let payload = vec![b'x'; 1_000];
    let mut i = 0u64;
    for _ in 0..2 {
        server.deposit(&format!("tick_{i}.csv"), &payload).unwrap();
        i += 1;
    }
    time_fn(
        "fanout_deposit_cost",
        &format!("deposit_s{subscribers}"),
        samples,
        Some(Throughput::Elements(1)),
        || {
            server.deposit(&format!("tick_{i}.csv"), &payload).unwrap();
            i += 1;
        },
    )
}

/// Render the shape table.
pub fn table(points: &[FanoutPoint]) -> Table {
    let mut t = Table::new(
        "E14: delivery ops and tracker state vs group/member count",
        &[
            "groups",
            "members/group",
            "subscribers",
            "sends/deposit",
            "tracker entries/deposit",
            "bitmap bytes/deposit",
        ],
    );
    for p in points {
        t.row(vec![
            p.groups.to_string(),
            p.members_per_group.to_string(),
            p.subscribers.to_string(),
            p.ops_per_deposit.to_string(),
            p.tracker_entries_per_deposit.to_string(),
            p.bitmap_bytes_per_deposit.to_string(),
        ]);
    }
    t
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ops_scale_with_groups_not_members() {
        let narrow = run_fanout(4, 3, 2);
        let wide = run_fanout(4, 12, 2);
        assert_eq!(narrow.ops_per_deposit, 4);
        assert_eq!(
            narrow.ops_per_deposit, wide.ops_per_deposit,
            "quadrupling members must not change delivery ops"
        );
        assert_eq!(
            narrow.tracker_entries_per_deposit,
            wide.tracker_entries_per_deposit
        );
        let more_groups = run_fanout(8, 3, 2);
        assert_eq!(more_groups.ops_per_deposit, 8);
    }

    #[test]
    fn bitmap_state_is_bytes_not_entries() {
        let p = run_fanout(2, 20, 1);
        // 20 members fit in 3 bytes per group; a per-member tracker
        // would hold 40 entries
        assert_eq!(p.bitmap_bytes_per_deposit, 2 * 3);
        assert_eq!(p.tracker_entries_per_deposit, 2);
        assert_eq!(p.subscribers, 40);
    }

    #[test]
    fn bench_point_runs_and_names_the_scale() {
        let r = bench_fanout_deposit(4, 3, 3);
        assert_eq!(r.group, "fanout_group_delivery");
        assert_eq!(r.name, "deposit_g4_m3");
        assert!(r.median_ns > 0.0, "{r:?}");
    }

    #[test]
    fn deposit_cost_point_runs_and_names_the_subscriber_count() {
        let r = bench_deposit_cost(200, 3);
        assert_eq!(r.group, "fanout_deposit_cost");
        assert_eq!(r.name, "deposit_s200");
        assert!(r.median_ns > 0.0, "{r:?}");
    }
}
