//! E13: partitioned-feed failover with exactly-once re-homing.
use bistro_bench::e13_failover as e13;
fn main() {
    let outcomes = e13::run(&[1, 7, 42, 99, 1234], 40);
    print!("{}", e13::table(&outcomes));
}
