//! E3: source→subscriber propagation latency.
use bistro_base::TimeSpan;
use bistro_bench::e3_propagation as e3;
fn main() {
    let points = e3::run(&[
        TimeSpan::from_secs(1),
        TimeSpan::from_secs(5),
        TimeSpan::from_secs(30),
        TimeSpan::from_mins(5),
    ]);
    print!("{}", e3::table(&points));
}
