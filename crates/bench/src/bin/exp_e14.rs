//! E14: shared delivery trees at million-subscriber fanout.
//!
//! Prints the fanout-shape table (delivery sends and tracker entries
//! per deposit must follow the group count, never the member count)
//! and splices two timing groups into the machine-readable perf
//! trajectory `BENCH_throughput.json`, leaving every other
//! experiment's entries intact:
//!
//! * `fanout_group_delivery` — per-deposit latency across the
//!   `(groups, members)` grid;
//! * `fanout_deposit_cost` — per-deposit latency across a subscriber
//!   sweep at a fixed group count. The inverted delivery index makes
//!   the match step `O(matched)`, so these medians must stay flat in
//!   subscriber count (the pre-index scan grew linearly); the run
//!   checks endpoint-to-endpoint flatness itself and the `--gate` run
//!   compares every point against the committed baseline.
//!
//! Flags:
//!
//! * `--quick` — CI mode: cap the scale at tens of thousands of
//!   subscribers and take fewer samples. The `deposit_g100_m100`
//!   point is measured in both modes so a quick run always has a
//!   committed median to gate against.
//! * `--gate <baseline.json>` — perf-regression gate: compare this
//!   run's `fanout_group_delivery` medians against a committed
//!   baseline document and exit non-zero only if any median regressed
//!   by more than 2× (generous on purpose: shared CI runners are
//!   noisy; the gate exists to catch order-of-magnitude mistakes, not
//!   5% drift).
use bistro_bench::e11_throughput::gate_in_group;
use bistro_bench::e14_fanout as e14;
use bistro_bench::harness;

/// Regression factor the gate tolerates before failing.
const GATE_FACTOR: f64 = 2.0;

/// The trajectory-file groups this experiment owns.
const GROUP: &str = "fanout_group_delivery";
const COST_GROUP: &str = "fanout_deposit_cost";

/// How much the deposit-cost median may grow from the smallest to the
/// largest subscriber count before the sweep fails. Same-run medians on
/// the same machine: the index holds this near 1×; the pre-index scan
/// sat at ~`subscribers_max / subscribers_min` (100× in full mode).
const FLATNESS_FACTOR: f64 = 3.0;

fn main() {
    let mut quick = false;
    let mut gate: Option<String> = None;
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut it = args.iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--quick" => quick = true,
            "--gate" => {
                let v = it.next().expect("--gate needs a baseline path");
                gate = Some(v.clone());
            }
            other => panic!("unknown exp_e14 flag {other}"),
        }
    }

    // Snapshot the gate baseline *before* running anything: this binary
    // rewrites its group in BENCH_throughput.json, so reading the
    // baseline later would compare the run against itself when handed
    // the same path.
    let gate = gate.map(|path| {
        let body =
            std::fs::read_to_string(&path).unwrap_or_else(|e| panic!("gate baseline {path}: {e}"));
        (path, body)
    });

    // (groups, members-per-group) scale points. The full grid crosses
    // G and M so the table shows ops following G while M varies freely,
    // topping out at 1k groups × 1k members = one million subscribers.
    let points: &[(usize, usize)] = if quick {
        &[(100, 100), (400, 100), (100, 400)]
    } else {
        &[(100, 100), (1000, 100), (100, 1000), (1000, 1000)]
    };
    let samples = if quick { 10 } else { 15 };

    let shape: Vec<e14::FanoutPoint> = points
        .iter()
        .map(|&(g, m)| e14::run_fanout(g, m, 2))
        .collect();
    print!("{}", e14::table(&shape));

    let bench: Vec<harness::BenchResult> = points
        .iter()
        .map(|&(g, m)| e14::bench_fanout_deposit(g, m, samples))
        .collect();
    harness::merge_json_file("BENCH_throughput.json", &bench, GROUP)
        .expect("write BENCH_throughput.json");
    for r in &bench {
        println!(
            "{}/{}: median {:.0} ns, p95 {:.0} ns, {:.0} /s",
            r.group,
            r.name,
            r.median_ns,
            r.p95_ns,
            r.per_sec().unwrap_or(0.0)
        );
    }
    println!("merged {GROUP} into BENCH_throughput.json");

    // Deposit cost vs subscriber count at a fixed group count: the
    // sweep the inverted delivery index must keep flat. Quick mode
    // spans 10k→40k (its smallest point doubles as the committed
    // baseline for CI gating); the full sweep tops out at a million.
    let cost_points: &[usize] = if quick {
        &[10_000, 40_000]
    } else {
        &[10_000, 100_000, 1_000_000]
    };
    let cost: Vec<harness::BenchResult> = cost_points
        .iter()
        .map(|&subs| e14::bench_deposit_cost(subs, samples))
        .collect();
    harness::merge_json_file("BENCH_throughput.json", &cost, COST_GROUP)
        .expect("write BENCH_throughput.json");
    for r in &cost {
        println!(
            "{}/{}: median {:.0} ns, p95 {:.0} ns, {:.0} /s",
            r.group,
            r.name,
            r.median_ns,
            r.p95_ns,
            r.per_sec().unwrap_or(0.0)
        );
    }
    println!("merged {COST_GROUP} into BENCH_throughput.json");
    let (small, large) = (&cost[0], &cost[cost.len() - 1]);
    let growth = large.median_ns / small.median_ns;
    println!(
        "deposit-cost flatness: {} → {} grows {growth:.2}x (limit {FLATNESS_FACTOR}x)",
        small.name, large.name
    );
    if growth > FLATNESS_FACTOR {
        eprintln!(
            "deposit cost is not flat in subscriber count: {growth:.2}x from {} to {}",
            small.name, large.name
        );
        std::process::exit(1);
    }

    if let Some((path, baseline)) = gate {
        let mut lines = gate_in_group(&baseline, GROUP, &bench)
            .unwrap_or_else(|e| panic!("gate baseline {path}: {e}"));
        lines.extend(
            gate_in_group(&baseline, COST_GROUP, &cost)
                .unwrap_or_else(|e| panic!("gate baseline {path}: {e}")),
        );
        let mut failed = false;
        for l in &lines {
            let verdict = if l.ratio > GATE_FACTOR {
                failed = true;
                "REGRESSION"
            } else {
                "ok"
            };
            println!(
                "gate {}: median {:.0} ns vs baseline {:.0} ns ({:.2}x) {verdict}",
                l.bench, l.current_ns, l.baseline_ns, l.ratio
            );
        }
        if failed {
            eprintln!("perf gate failed: a median regressed by more than {GATE_FACTOR}x");
            std::process::exit(1);
        }
        println!(
            "perf gate passed ({} benches within {GATE_FACTOR}x)",
            lines.len()
        );
    }
}
