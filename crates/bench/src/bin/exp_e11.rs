//! E11: deployment-scale throughput.
//!
//! Prints the experiment tables and writes the machine-readable perf
//! trajectory files `BENCH_classify.json` and `BENCH_throughput.json`
//! (schema `bistro-bench-v1`: median/p95 per-file latency plus
//! files/sec / bytes/sec throughput).
//!
//! `--workers N[,N...]` selects the ingest worker counts for the
//! `server_ingest_100_feeds/par{N}` batch-ingest scaling groups
//! (default `1,2,4,8`).
use bistro_bench::e11_throughput as e11;
use bistro_bench::harness;

fn main() {
    let mut workers_list: Vec<usize> = vec![1, 2, 4, 8];
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut it = args.iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--workers" => {
                let v = it.next().expect("--workers needs a value (e.g. 1,2,4,8)");
                workers_list = v
                    .split(',')
                    .map(|s| s.parse().expect("bad --workers value"))
                    .collect();
            }
            other => panic!("unknown exp_e11 flag {other}"),
        }
    }

    let classify = e11::run_classifier(&[10, 50, 100, 250, 500]);
    let ingest = e11::run_ingest(5_000, 60_000);
    let (t1, t2) = e11::tables(&classify, &ingest);
    print!("{t1}{t2}");

    let classify_bench = e11::bench_classify(250, 30);
    harness::write_json("BENCH_classify.json", &classify_bench).expect("write BENCH_classify.json");
    let mut ingest_bench = e11::bench_ingest(60_000, 30);
    for &w in &workers_list {
        ingest_bench.push(e11::bench_ingest_parallel(60_000, 30, w));
    }
    harness::write_json("BENCH_throughput.json", &ingest_bench)
        .expect("write BENCH_throughput.json");
    for r in classify_bench.iter().chain(&ingest_bench) {
        println!(
            "{}/{}: median {:.0} ns, p95 {:.0} ns, {:.0} /s",
            r.group,
            r.name,
            r.median_ns,
            r.p95_ns,
            r.per_sec().unwrap_or(0.0)
        );
    }
    println!("wrote BENCH_classify.json, BENCH_throughput.json");
}
