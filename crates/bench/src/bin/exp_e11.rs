//! E11: deployment-scale throughput.
use bistro_bench::e11_throughput as e11;
fn main() {
    let classify = e11::run_classifier(&[10, 50, 100, 250, 500]);
    let ingest = e11::run_ingest(5_000, 60_000);
    let (t1, t2) = e11::tables(&classify, &ingest);
    print!("{t1}{t2}");
}
