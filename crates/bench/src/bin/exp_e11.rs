//! E11: deployment-scale throughput.
//!
//! Prints the experiment tables and writes the machine-readable perf
//! trajectory files `BENCH_classify.json` and `BENCH_throughput.json`
//! (schema `bistro-bench-v1`: median/p95 per-file latency plus
//! files/sec / bytes/sec throughput).
use bistro_bench::e11_throughput as e11;
use bistro_bench::harness;

fn main() {
    let classify = e11::run_classifier(&[10, 50, 100, 250, 500]);
    let ingest = e11::run_ingest(5_000, 60_000);
    let (t1, t2) = e11::tables(&classify, &ingest);
    print!("{t1}{t2}");

    let classify_bench = e11::bench_classify(250, 30);
    harness::write_json("BENCH_classify.json", &classify_bench).expect("write BENCH_classify.json");
    let ingest_bench = e11::bench_ingest(60_000, 30);
    harness::write_json("BENCH_throughput.json", &ingest_bench)
        .expect("write BENCH_throughput.json");
    for r in classify_bench.iter().chain(&ingest_bench) {
        println!(
            "{}/{}: median {:.0} ns, p95 {:.0} ns, {:.0} /s",
            r.group,
            r.name,
            r.median_ns,
            r.p95_ns,
            r.per_sec().unwrap_or(0.0)
        );
    }
    println!("wrote BENCH_classify.json, BENCH_throughput.json");
}
