//! E11: deployment-scale throughput.
//!
//! Prints the experiment tables and writes the machine-readable perf
//! trajectory files `BENCH_classify.json` and `BENCH_throughput.json`
//! (schema `bistro-bench-v1`: median/p95 per-file latency plus
//! files/sec / bytes/sec throughput).
//!
//! Flags:
//!
//! * `--workers N[,N...]` — ingest worker counts for the
//!   `server_ingest_100_feeds/par{N}` batch-ingest scaling groups
//!   (default `1,2,4,8`; `--quick` defaults to `1,2`).
//! * `--quick` — CI mode: skip the slow classifier/ingest scaling
//!   tables and `BENCH_classify.json`, take fewer samples. Still writes
//!   a complete `BENCH_throughput.json`.
//! * `--gate <baseline.json>` — perf-regression gate: compare this
//!   run's `server_ingest_100_feeds` medians against a committed
//!   baseline document and exit non-zero only if any median regressed
//!   by more than 2× (generous on purpose: shared CI runners are
//!   noisy; the gate exists to catch order-of-magnitude mistakes, not
//!   5% drift).
use bistro_bench::e11_throughput as e11;
use bistro_bench::harness;

/// Regression factor the gate tolerates before failing.
const GATE_FACTOR: f64 = 2.0;

fn main() {
    let mut workers_list: Option<Vec<usize>> = None;
    let mut quick = false;
    let mut gate: Option<String> = None;
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut it = args.iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--workers" => {
                let v = it.next().expect("--workers needs a value (e.g. 1,2,4,8)");
                workers_list = Some(
                    v.split(',')
                        .map(|s| s.parse().expect("bad --workers value"))
                        .collect(),
                );
            }
            "--quick" => quick = true,
            "--gate" => {
                let v = it.next().expect("--gate needs a baseline path");
                gate = Some(v.clone());
            }
            other => panic!("unknown exp_e11 flag {other}"),
        }
    }
    let workers_list =
        workers_list.unwrap_or_else(|| if quick { vec![1, 2] } else { vec![1, 2, 4, 8] });
    let samples = if quick { 12 } else { 30 };

    // Snapshot the gate baseline *before* running anything: this binary
    // rewrites BENCH_throughput.json, so reading the baseline later
    // would compare the run against itself when handed the same path.
    let gate = gate.map(|path| {
        let body =
            std::fs::read_to_string(&path).unwrap_or_else(|e| panic!("gate baseline {path}: {e}"));
        (path, body)
    });

    if !quick {
        let classify = e11::run_classifier(&[10, 50, 100, 250, 500]);
        let ingest = e11::run_ingest(5_000, 60_000);
        let (t1, t2) = e11::tables(&classify, &ingest);
        print!("{t1}{t2}");
        let classify_bench = e11::bench_classify(250, samples);
        harness::write_json("BENCH_classify.json", &classify_bench)
            .expect("write BENCH_classify.json");
        for r in &classify_bench {
            print_result(r);
        }
    }

    let mut ingest_bench = e11::bench_ingest(60_000, samples);
    for &w in &workers_list {
        ingest_bench.push(e11::bench_ingest_parallel(60_000, samples, w));
    }
    // splice: BENCH_throughput.json is shared with exp_e14's
    // fanout_group_delivery group, which this run must not erase
    harness::merge_json_file(
        "BENCH_throughput.json",
        &ingest_bench,
        "server_ingest_100_feeds",
    )
    .expect("write BENCH_throughput.json");
    for r in &ingest_bench {
        print_result(r);
    }
    println!(
        "wrote BENCH_throughput.json{}",
        if quick { "" } else { ", BENCH_classify.json" }
    );

    if let Some((path, baseline)) = gate {
        let lines = e11::gate_against_baseline(&baseline, &ingest_bench)
            .unwrap_or_else(|e| panic!("gate baseline {path}: {e}"));
        let mut failed = false;
        for l in &lines {
            let verdict = if l.ratio > GATE_FACTOR {
                failed = true;
                "REGRESSION"
            } else {
                "ok"
            };
            println!(
                "gate {}: median {:.0} ns vs baseline {:.0} ns ({:.2}x) {verdict}",
                l.bench, l.current_ns, l.baseline_ns, l.ratio
            );
        }
        if failed {
            eprintln!("perf gate failed: a median regressed by more than {GATE_FACTOR}x");
            std::process::exit(1);
        }
        println!(
            "perf gate passed ({} benches within {GATE_FACTOR}x)",
            lines.len()
        );
    }
}

fn print_result(r: &harness::BenchResult) {
    println!(
        "{}/{}: median {:.0} ns, p95 {:.0} ns, {:.0} /s",
        r.group,
        r.name,
        r.median_ns,
        r.p95_ns,
        r.per_sec().unwrap_or(0.0)
    );
}
