//! E4: batch policies under unreliable pollers.
use bistro_bench::e4_batching as e4;
fn main() {
    let points = e4::run(&[0.0, 0.1, 0.3]);
    print!("{}", e4::table(&points));
}
