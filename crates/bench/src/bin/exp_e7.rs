//! E7: backfill strategies.
use bistro_bench::e7_backfill as e7;
fn main() {
    let points = e7::run(&[20, 100, 300]);
    print!("{}", e7::table(&points));
}
