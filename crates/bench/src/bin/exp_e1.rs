//! E1: pull-polling metadata cost vs history size.
use bistro_bench::e1_pull_scan as e1;
fn main() {
    let points = e1::run(&[1_000, 5_000, 10_000, 50_000], 10);
    print!("{}", e1::table(&points, 10));
}
