//! E10: false-positive (composition) analysis.
use bistro_bench::e10_false_positives as e10;
fn main() {
    let points = e10::run(&[0.001, 0.005, 0.01, 0.03, 0.1, 0.3]);
    print!("{}", e10::table(&points));
}
