//! E8: new-feed discovery accuracy.
use bistro_bench::e8_discovery as e8;
fn main() {
    let points = e8::run(&[10, 25, 50, 100, 150], 4, 6);
    print!("{}", e8::table(&points));
}
