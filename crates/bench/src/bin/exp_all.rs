//! Run every experiment (E1-E11, E13, E14; E12 lives in the examples) and print all tables. This
//! is the regeneration entry point referenced by EXPERIMENTS.md.
use bistro_base::TimeSpan;
use bistro_bench::*;

fn main() {
    println!("# Bistro paper experiment suite\n");
    let p = e1_pull_scan::run(&[1_000, 5_000, 10_000, 50_000], 10);
    print!("{}", e1_pull_scan::table(&p, 10));
    let p = e2_rsync::run(&[1_000, 5_000, 10_000, 50_000]);
    print!("{}", e2_rsync::table(&p));
    let p = e3_propagation::run(&[
        TimeSpan::from_secs(1),
        TimeSpan::from_secs(5),
        TimeSpan::from_secs(30),
        TimeSpan::from_mins(5),
    ]);
    print!("{}", e3_propagation::table(&p));
    let p = e4_batching::run(&[0.0, 0.1, 0.3]);
    print!("{}", e4_batching::table(&p));
    let p = e5_reliability::run(&[1, 7, 42, 99, 1234], 80);
    print!("{}", e5_reliability::table(&p));
    let p = e5_reliability::run_faulty(&[1, 7, 42, 99, 1234], 60);
    print!("{}", e5_reliability::table_faulty(&p));
    let p = e6_scheduling::run();
    print!("{}", e6_scheduling::table(&p));
    let p = e7_backfill::run(&[20, 100, 300]);
    print!("{}", e7_backfill::table(&p));
    let p = e8_discovery::run(&[10, 25, 50, 100, 150], 4, 6);
    print!("{}", e8_discovery::table(&p));
    let p = e9_false_negatives::run(10);
    print!("{}", e9_false_negatives::table(&p, 10));
    let p = e10_false_positives::run(&[0.001, 0.005, 0.01, 0.03, 0.1, 0.3]);
    print!("{}", e10_false_positives::table(&p));
    let classify = e11_throughput::run_classifier(&[10, 50, 100, 250, 500]);
    let ingest = e11_throughput::run_ingest(5_000, 60_000);
    let (t1, t2) = e11_throughput::tables(&classify, &ingest);
    print!("{t1}{t2}");
    let p = e13_failover::run(&[1, 7, 42, 99, 1234], 40);
    print!("{}", e13_failover::table(&p));
    // shape points only — the full million-subscriber grid and the
    // BENCH_throughput.json splice belong to the exp_e14 binary
    let p: Vec<_> = [(100, 100), (400, 100), (100, 400)]
        .iter()
        .map(|&(g, m)| e14_fanout::run_fanout(g, m, 2))
        .collect();
    print!("{}", e14_fanout::table(&p));
}
