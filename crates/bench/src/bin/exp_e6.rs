//! E6: scheduling policy sweep + partitioning + locality ablation.
use bistro_bench::e6_scheduling as e6;
fn main() {
    let points = e6::run();
    print!("{}", e6::table(&points));
}
