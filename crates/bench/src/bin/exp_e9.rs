//! E9: false-negative detection shootout.
use bistro_bench::e9_false_negatives as e9;
fn main() {
    let points = e9::run(10);
    print!("{}", e9::table(&points, 10));
}
