//! E5: reliability under fault injection.
use bistro_bench::e5_reliability as e5;
fn main() {
    let outcomes = e5::run(&[1, 7, 42, 99, 1234], 80);
    print!("{}", e5::table(&outcomes));
    let faulty = e5::run_faulty(&[1, 7, 42, 99, 1234], 60);
    print!("{}", e5::table_faulty(&faulty));
}
