//! E2: rsync/cron vs the receipt database.
use bistro_bench::e2_rsync as e2;
fn main() {
    let points = e2::run(&[1_000, 5_000, 10_000, 50_000]);
    print!("{}", e2::table(&points));
}
