//! E3 — source→subscriber propagation delay (§4.1).
//!
//! Claim: "By using the landing zone approach for distributing network
//! measurement data from more than one hundred non-cooperating data
//! sources to several data warehouses, we were able to achieve
//! sub-minute data source to application propagation delays."
//!
//! We drive a server with 120 sources over one simulated hour and
//! measure deposit→subscriber-notification latency under (a) cooperative
//! notifications (ingest at deposit), and (b) non-cooperating sources
//! with periodic landing-zone scans at several scan intervals.

use crate::table::Table;
use bistro_base::{Clock, SimClock, TimePoint, TimeSpan};
use bistro_config::parse_config;
use bistro_core::Server;
use bistro_simnet::{generate, FleetConfig, SubfeedSpec};
use bistro_transport::{LinkSpec, SimNetwork};
use bistro_vfs::{FileStore, MemFs};
use std::sync::Arc;

/// One measured configuration.
#[derive(Clone, Debug)]
pub struct Point {
    /// Mode label.
    pub mode: String,
    /// Files delivered.
    pub files: usize,
    /// Mean deposit→notification latency.
    pub mean: TimeSpan,
    /// 95th percentile.
    pub p95: TimeSpan,
    /// Max.
    pub max: TimeSpan,
}

fn config_src() -> &'static str {
    r#"
    feed SNMP/ALL { pattern "%a_poller%i_%Y%m%d%H%M.csv"; }
    subscriber warehouse {
        endpoint "warehouse";
        subscribe SNMP/ALL;
        delivery push;
        deadline 60s;
    }
    "#
}

/// Latency stats from arrival times at the subscriber endpoint.
fn stats(mode: &str, latencies: &mut [TimeSpan]) -> Point {
    latencies.sort_unstable();
    let n = latencies.len().max(1);
    let mean =
        TimeSpan::from_micros(latencies.iter().map(|t| t.as_micros()).sum::<u64>() / n as u64);
    let p95 = latencies
        .get(((n as f64 * 0.95).ceil() as usize).saturating_sub(1))
        .copied()
        .unwrap_or_default();
    let max = latencies.last().copied().unwrap_or_default();
    Point {
        mode: mode.to_string(),
        files: latencies.len(),
        mean,
        p95,
        max,
    }
}

/// Run the experiment: cooperative notifications plus a sweep of scan
/// intervals for non-cooperating sources.
pub fn run(scan_intervals: &[TimeSpan]) -> Vec<Point> {
    let mut out = Vec::new();
    // ~120 sources: 40 pollers × 3 subfeeds
    let fleet = || {
        let mut f = FleetConfig::standard(
            40,
            vec![
                SubfeedSpec::standard("BPS"),
                SubfeedSpec::standard("CPU"),
                SubfeedSpec::standard("MEMORY"),
            ],
            TimeSpan::from_hours(1),
        );
        f.delay_range = (TimeSpan::from_secs(1), TimeSpan::from_secs(10));
        f
    };

    // (a) cooperative: deposit + notify
    {
        let clock = SimClock::starting_at(TimePoint::from_secs(1_285_372_800));
        let net = Arc::new(SimNetwork::new(LinkSpec {
            bandwidth: 50_000_000,
            latency: TimeSpan::from_millis(20),
        }));
        let store = MemFs::shared(clock.clone());
        let mut server = Server::new(
            "bistro",
            parse_config(config_src()).unwrap(),
            clock.clone(),
            store,
        )
        .unwrap()
        .with_network(net.clone());
        let files = generate(&fleet());
        let mut deposit_times = std::collections::HashMap::new();
        for f in &files {
            clock.set(f.deposit_time);
            deposit_times.insert(f.name.clone(), f.deposit_time);
            server
                .deposit(&f.name, &vec![b'x'; f.size as usize])
                .unwrap();
        }
        clock.advance(TimeSpan::from_mins(5));
        let mut latencies: Vec<TimeSpan> = net
            .recv_ready("warehouse", clock.now())
            .into_iter()
            .filter_map(|d| match d.msg {
                bistro_transport::messages::Message::Subscriber(
                    bistro_transport::messages::SubscriberMsg::FileDelivered { dest_path, .. },
                ) => {
                    let name = dest_path.rsplit('/').next().unwrap().to_string();
                    deposit_times.get(&name).map(|t| d.at.since(*t))
                }
                _ => None,
            })
            .collect();
        out.push(stats("notification (cooperative)", &mut latencies));
    }

    // (b) non-cooperating sources, landing-zone scan every `interval`
    for &interval in scan_intervals {
        let clock = SimClock::starting_at(TimePoint::from_secs(1_285_372_800));
        let net = Arc::new(SimNetwork::new(LinkSpec {
            bandwidth: 50_000_000,
            latency: TimeSpan::from_millis(20),
        }));
        let store = MemFs::shared(clock.clone());
        let mut server = Server::new(
            "bistro",
            parse_config(config_src()).unwrap(),
            clock.clone(),
            store.clone(),
        )
        .unwrap()
        .with_network(net.clone());

        let files = generate(&fleet());
        let mut deposit_times = std::collections::HashMap::new();
        let mut idx = 0usize;
        let end = files.last().unwrap().deposit_time + interval;
        let mut next_scan = files[0].deposit_time;
        while next_scan <= end {
            // sources silently drop files into the landing dir
            while idx < files.len() && files[idx].deposit_time <= next_scan {
                let f = &files[idx];
                clock.set(f.deposit_time);
                store
                    .write(&format!("landing/{}", f.name), &vec![b'x'; f.size as usize])
                    .unwrap();
                deposit_times.insert(f.name.clone(), f.deposit_time);
                idx += 1;
            }
            clock.set(next_scan);
            server.scan_landing().unwrap();
            next_scan += interval;
        }
        clock.advance(TimeSpan::from_mins(5));
        let mut latencies: Vec<TimeSpan> = net
            .recv_ready("warehouse", clock.now())
            .into_iter()
            .filter_map(|d| match d.msg {
                bistro_transport::messages::Message::Subscriber(
                    bistro_transport::messages::SubscriberMsg::FileDelivered { dest_path, .. },
                ) => {
                    let name = dest_path.rsplit('/').next().unwrap().to_string();
                    deposit_times.get(&name).map(|t| d.at.since(*t))
                }
                _ => None,
            })
            .collect();
        out.push(stats(
            &format!("landing scan every {interval}"),
            &mut latencies,
        ));
    }
    out
}

/// Render the experiment table.
pub fn table(points: &[Point]) -> Table {
    let mut t = Table::new(
        "E3: deposit → subscriber propagation latency (120 sources, 1h of traffic)",
        &["mode", "files", "mean", "p95", "max", "sub-minute?"],
    );
    for p in points {
        t.row(vec![
            p.mode.clone(),
            p.files.to_string(),
            p.mean.to_string(),
            p.p95.to_string(),
            p.max.to_string(),
            (p.max < TimeSpan::from_secs(60)).to_string(),
        ]);
    }
    t
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sub_minute_propagation_holds() {
        let points = run(&[TimeSpan::from_secs(5), TimeSpan::from_secs(30)]);
        // cooperative mode: latency ≈ network only
        assert!(points[0].max < TimeSpan::from_secs(5), "{:?}", points[0]);
        // 5s scans stay sub-minute (the paper's claim)
        assert!(points[1].max < TimeSpan::from_secs(60), "{:?}", points[1]);
        // latency ordering: notification < 5s scan < 30s scan
        assert!(points[0].mean < points[1].mean);
        assert!(points[1].mean < points[2].mean);
        // every file made it
        assert_eq!(points[0].files, points[1].files);
    }
}
