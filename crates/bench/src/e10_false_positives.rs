//! E10 — false-positive detection by composition analysis (§5.3).
//!
//! Claim: "if a data feed composed of bytes per second measurement also
//! starts receiving packets per second data with an identical schema,
//! problem detection might be arbitrarily delayed" — Bistro clusters the
//! stream matching a feed into atomic feeds and "identifies and marks
//! outliers that do not share filename structure with the rest of the
//! matching files".
//!
//! A wildcard-defined feed legitimately carries BPS files; PPS files leak
//! in at a sweep of rates. We measure whether the leaked subfeed is
//! flagged as an outlier, and that the legitimate composition is not.

use crate::table::Table;
use bistro_analyzer::fp_report;

/// One leak rate's outcome.
#[derive(Clone, Debug)]
pub struct Point {
    /// Fraction of leaked files.
    pub leak_rate: f64,
    /// Total files in the feed.
    pub total: usize,
    /// Leaked files.
    pub leaked: usize,
    /// Atomic feeds reported as legitimate composition.
    pub composition: usize,
    /// Outliers flagged.
    pub outliers: usize,
    /// Was the leak flagged as an outlier?
    pub leak_flagged: bool,
    /// Was any legitimate subfeed wrongly flagged?
    pub false_alarm: bool,
}

/// Run the leak-rate sweep.
pub fn run(leak_rates: &[f64]) -> Vec<Point> {
    let mut out = Vec::new();
    for &rate in leak_rates {
        let mut files: Vec<String> = Vec::new();
        // legitimate: BPS from 4 pollers, hourly, 4 weeks
        for day in 1..=28 {
            for hour in (0..24).step_by(6) {
                for poller in 1..=4 {
                    files.push(format!("BPS_poller{poller}_201009{day:02}{hour:02}00.csv"));
                }
            }
        }
        let legit = files.len();
        let leaked = ((legit as f64 * rate) / (1.0 - rate)).round() as usize;
        for i in 0..leaked {
            let day = 1 + i % 28;
            files.push(format!("PPS_poller1_201009{day:02}0000.csv"));
        }
        let report = fp_report("BILLING/BPS", files.iter().map(|s| s.as_str()), 0.05);
        let leak_flagged = report
            .outliers
            .iter()
            .any(|o| o.pattern.text().starts_with("PPS"));
        let false_alarm = report
            .outliers
            .iter()
            .any(|o| o.pattern.text().starts_with("BPS"));
        out.push(Point {
            leak_rate: rate,
            total: files.len(),
            leaked,
            composition: report.composition.len(),
            outliers: report.outliers.len(),
            leak_flagged,
            false_alarm,
        });
    }
    out
}

/// Render the experiment table.
pub fn table(points: &[Point]) -> Table {
    let mut t = Table::new(
        "E10: false-positive detection — PPS leaking into a BPS feed",
        &[
            "leak rate",
            "total files",
            "leaked",
            "composition feeds",
            "outliers",
            "leak flagged",
            "false alarm",
        ],
    );
    for p in points {
        t.row(vec![
            format!("{:.1}%", p.leak_rate * 100.0),
            p.total.to_string(),
            p.leaked.to_string(),
            p.composition.to_string(),
            p.outliers.to_string(),
            p.leak_flagged.to_string(),
            p.false_alarm.to_string(),
        ]);
    }
    t
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn small_leaks_flagged_without_false_alarms() {
        let points = run(&[0.005, 0.01, 0.03]);
        for p in &points {
            assert!(p.leak_flagged, "{p:?}");
            assert!(!p.false_alarm, "{p:?}");
            assert_eq!(p.composition, 1, "{p:?}");
        }
    }

    #[test]
    fn large_leak_becomes_composition() {
        // at 30% the "leak" is arguably a real subfeed: it moves out of
        // the outlier set and into the composition report — which is
        // exactly what the subscriber review loop is for
        let points = run(&[0.3]);
        assert!(!points[0].leak_flagged, "{points:?}");
        assert_eq!(points[0].composition, 2);
    }
}
