//! A minimal, dependency-free micro-benchmark harness (the Criterion
//! replacement for hermetic builds).
//!
//! Methodology per benchmark: a short calibration phase picks an
//! iteration count so one sample takes ~1 ms, a warmup phase runs the
//! routine for a fixed time budget, then `sample_size` timed samples
//! are collected. Reported statistics are per-iteration latencies over
//! samples: median, p95, mean, min, max — plus derived throughput when
//! the benchmark declares units per iteration.
//!
//! Results render as a text summary and serialize to machine-readable
//! JSON (`BENCH_*.json`, schema `bistro-bench-v1`) via [`crate::json`],
//! which is what the perf-trajectory tooling consumes.

use crate::json::Json;
use std::time::{Duration, Instant};

/// Units processed by one iteration, for throughput derivation.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Throughput {
    /// Logical items per iteration (files, classifications, …).
    Elements(u64),
    /// Bytes per iteration.
    Bytes(u64),
}

/// How `iter_batched` amortizes setup; kept for Criterion API
/// compatibility (the strategy does not change measurement here).
#[derive(Clone, Copy, Debug)]
pub enum BatchSize {
    /// Inputs are cheap to set up.
    SmallInput,
    /// Inputs are expensive to set up.
    LargeInput,
}

/// One benchmark's measured statistics (per-iteration nanoseconds).
#[derive(Clone, Debug)]
pub struct BenchResult {
    /// Group name (e.g. `classifier_250_feeds`).
    pub group: String,
    /// Benchmark name within the group (e.g. `hit`).
    pub name: String,
    /// Iterations folded into each timed sample.
    pub iters_per_sample: u64,
    /// Number of timed samples.
    pub samples: usize,
    /// Median per-iteration latency.
    pub median_ns: f64,
    /// 95th-percentile per-iteration latency.
    pub p95_ns: f64,
    /// Mean per-iteration latency.
    pub mean_ns: f64,
    /// Fastest sample.
    pub min_ns: f64,
    /// Slowest sample.
    pub max_ns: f64,
    /// Declared units per iteration, if any.
    pub throughput: Option<Throughput>,
}

impl BenchResult {
    /// Units per second at the median latency (`None` when the
    /// benchmark declared no throughput units).
    pub fn per_sec(&self) -> Option<f64> {
        let units = match self.throughput {
            Some(Throughput::Elements(n)) | Some(Throughput::Bytes(n)) => n as f64,
            None => return None,
        };
        Some(units / (self.median_ns / 1e9))
    }

    fn to_json(&self) -> Json {
        let mut obj = vec![
            ("group".to_string(), Json::Str(self.group.clone())),
            ("name".to_string(), Json::Str(self.name.clone())),
            (
                "iters_per_sample".to_string(),
                Json::Num(self.iters_per_sample as f64),
            ),
            ("samples".to_string(), Json::Num(self.samples as f64)),
            ("median_ns".to_string(), Json::Num(self.median_ns)),
            ("p95_ns".to_string(), Json::Num(self.p95_ns)),
            ("mean_ns".to_string(), Json::Num(self.mean_ns)),
            ("min_ns".to_string(), Json::Num(self.min_ns)),
            ("max_ns".to_string(), Json::Num(self.max_ns)),
        ];
        if let Some(t) = self.throughput {
            let (unit, n) = match t {
                Throughput::Elements(n) => ("elements", n),
                Throughput::Bytes(n) => ("bytes", n),
            };
            obj.push((
                "throughput".to_string(),
                Json::Obj(vec![
                    ("unit".to_string(), Json::Str(unit.to_string())),
                    ("units_per_iter".to_string(), Json::Num(n as f64)),
                    (
                        "per_sec".to_string(),
                        Json::Num(self.per_sec().unwrap_or(0.0)),
                    ),
                ]),
            ));
        }
        Json::Obj(obj)
    }
}

/// Serialize results to the `bistro-bench-v1` JSON document.
pub fn results_to_json(results: &[BenchResult]) -> String {
    Json::Obj(vec![
        (
            "schema".to_string(),
            Json::Str("bistro-bench-v1".to_string()),
        ),
        (
            "results".to_string(),
            Json::Arr(results.iter().map(BenchResult::to_json).collect()),
        ),
    ])
    .render()
}

fn result_from_json(r: &Json) -> Option<BenchResult> {
    let throughput = r.get("throughput").and_then(|t| {
        let n = t.get("units_per_iter").and_then(Json::as_num)? as u64;
        match t.get("unit").and_then(Json::as_str)? {
            "bytes" => Some(Throughput::Bytes(n)),
            _ => Some(Throughput::Elements(n)),
        }
    });
    Some(BenchResult {
        group: r.get("group").and_then(Json::as_str)?.to_string(),
        name: r.get("name").and_then(Json::as_str)?.to_string(),
        iters_per_sample: r.get("iters_per_sample").and_then(Json::as_num)? as u64,
        samples: r.get("samples").and_then(Json::as_num)? as usize,
        median_ns: r.get("median_ns").and_then(Json::as_num)?,
        p95_ns: r.get("p95_ns").and_then(Json::as_num)?,
        mean_ns: r.get("mean_ns").and_then(Json::as_num)?,
        min_ns: r.get("min_ns").and_then(Json::as_num)?,
        max_ns: r.get("max_ns").and_then(Json::as_num)?,
        throughput,
    })
}

/// Merge `fresh` results into an existing `bistro-bench-v1` document,
/// replacing every entry of `replace_group` and preserving every other
/// group. [`write_json`] rewrites whole files, so an experiment that
/// owns one group of a shared trajectory file must splice rather than
/// overwrite — otherwise running E14 would erase E11's committed
/// medians (and vice versa).
pub fn merge_results(
    existing_json: Option<&str>,
    fresh: &[BenchResult],
    replace_group: &str,
) -> Result<Vec<BenchResult>, String> {
    let mut merged = Vec::new();
    if let Some(text) = existing_json {
        let doc =
            Json::parse(text).map_err(|e| format!("existing document does not parse: {e}"))?;
        if doc.get("schema").and_then(Json::as_str) != Some("bistro-bench-v1") {
            return Err("existing document is not bistro-bench-v1".to_string());
        }
        let results = doc
            .get("results")
            .and_then(Json::as_arr)
            .ok_or("existing document has no results array")?;
        for r in results {
            let keep = result_from_json(r)
                .ok_or_else(|| "existing document has a malformed result entry".to_string())?;
            if keep.group != replace_group {
                merged.push(keep);
            }
        }
    }
    merged.extend(fresh.iter().cloned());
    Ok(merged)
}

/// [`merge_results`] against the document at `path` (absent is fine),
/// writing the merged document back. An unmergeable existing file is a
/// stale generated artifact: warn and rebuild it from this run's
/// results alone rather than abort the experiment.
pub fn merge_json_file(
    path: &str,
    fresh: &[BenchResult],
    replace_group: &str,
) -> std::io::Result<()> {
    let existing = std::fs::read_to_string(path).ok();
    let merged = match merge_results(existing.as_deref(), fresh, replace_group) {
        Ok(m) => m,
        Err(e) => {
            eprintln!("warning: {path} not mergeable ({e}); rebuilding from this run only");
            fresh.to_vec()
        }
    };
    write_json(path, &merged)
}

/// Measure one routine: calibrate, warm up, then collect samples.
///
/// This is the primitive both the Criterion-shaped API and the
/// experiment binaries use directly.
pub fn time_fn(
    group: &str,
    name: &str,
    sample_size: usize,
    throughput: Option<Throughput>,
    mut f: impl FnMut(),
) -> BenchResult {
    // calibrate: double the iteration count until one sample is ~1 ms
    let mut iters = 1u64;
    loop {
        let t0 = Instant::now();
        for _ in 0..iters {
            f();
        }
        let el = t0.elapsed();
        if el >= Duration::from_millis(1) || iters >= 1 << 22 {
            break;
        }
        iters *= 2;
    }
    // warmup: at least 10 ms of additional running
    let t0 = Instant::now();
    while t0.elapsed() < Duration::from_millis(10) {
        f();
    }
    // timed samples
    let mut per_iter_ns = Vec::with_capacity(sample_size);
    for _ in 0..sample_size {
        let t0 = Instant::now();
        for _ in 0..iters {
            f();
        }
        per_iter_ns.push(t0.elapsed().as_nanos() as f64 / iters as f64);
    }
    stats(group, name, iters, per_iter_ns, throughput)
}

fn stats(
    group: &str,
    name: &str,
    iters: u64,
    mut per_iter_ns: Vec<f64>,
    throughput: Option<Throughput>,
) -> BenchResult {
    per_iter_ns.sort_by(|a, b| a.partial_cmp(b).unwrap());
    let n = per_iter_ns.len();
    let pct = |p: f64| per_iter_ns[(((n - 1) as f64) * p).round() as usize];
    BenchResult {
        group: group.to_string(),
        name: name.to_string(),
        iters_per_sample: iters,
        samples: n,
        median_ns: pct(0.50),
        p95_ns: pct(0.95),
        mean_ns: per_iter_ns.iter().sum::<f64>() / n as f64,
        min_ns: per_iter_ns[0],
        max_ns: per_iter_ns[n - 1],
        throughput,
    }
}

/// The harness root: owns collected results. API-shaped after
/// Criterion so the microbench file ports with minimal changes.
#[derive(Default)]
pub struct Criterion {
    results: Vec<BenchResult>,
    sample_size: usize,
}

impl Criterion {
    /// A harness with the default sample count (30).
    pub fn new() -> Criterion {
        Criterion {
            results: Vec::new(),
            sample_size: 30,
        }
    }

    /// Open a named benchmark group.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        let sample_size = self.sample_size;
        BenchmarkGroup {
            c: self,
            name: name.into(),
            throughput: None,
            sample_size,
        }
    }

    /// All results measured so far.
    pub fn results(&self) -> &[BenchResult] {
        &self.results
    }

    /// Print a human-readable summary table to stdout.
    pub fn print_summary(&self) {
        println!(
            "{:<46} {:>12} {:>12} {:>16}",
            "benchmark", "median", "p95", "throughput"
        );
        for r in &self.results {
            let tp = r
                .per_sec()
                .map(|v| {
                    let unit = match r.throughput {
                        Some(Throughput::Bytes(_)) => "B/s",
                        _ => "elem/s",
                    };
                    format!("{} {unit}", human(v))
                })
                .unwrap_or_else(|| "-".to_string());
            println!(
                "{:<46} {:>12} {:>12} {:>16}",
                format!("{}/{}", r.group, r.name),
                format!("{} ns", human(r.median_ns)),
                format!("{} ns", human(r.p95_ns)),
                tp
            );
        }
    }

    /// Write all results as `bistro-bench-v1` JSON.
    pub fn write_json(&self, path: &str) -> std::io::Result<()> {
        write_json(path, &self.results)
    }
}

/// Write a result set as `bistro-bench-v1` JSON to `path`.
pub fn write_json(path: &str, results: &[BenchResult]) -> std::io::Result<()> {
    std::fs::write(path, results_to_json(results))
}

fn human(v: f64) -> String {
    if v >= 1e9 {
        format!("{:.2}G", v / 1e9)
    } else if v >= 1e6 {
        format!("{:.2}M", v / 1e6)
    } else if v >= 1e3 {
        format!("{:.1}k", v / 1e3)
    } else {
        format!("{v:.1}")
    }
}

/// A named group of benchmarks sharing throughput/sample settings.
pub struct BenchmarkGroup<'a> {
    c: &'a mut Criterion,
    name: String,
    throughput: Option<Throughput>,
    sample_size: usize,
}

impl BenchmarkGroup<'_> {
    /// Declare units processed per iteration for subsequent benches.
    pub fn throughput(&mut self, t: Throughput) {
        self.throughput = Some(t);
    }

    /// Override the sample count for subsequent benches.
    pub fn sample_size(&mut self, n: usize) {
        self.sample_size = n.max(5);
    }

    /// Measure one benchmark; the closure receives a [`Bencher`] and
    /// must call one of its `iter*` methods.
    pub fn bench_function(&mut self, id: impl Into<String>, mut f: impl FnMut(&mut Bencher)) {
        let mut b = Bencher {
            group: self.name.clone(),
            name: id.into(),
            sample_size: self.sample_size,
            throughput: self.throughput,
            result: None,
        };
        f(&mut b);
        let result = b
            .result
            .expect("bench_function closure must call Bencher::iter or iter_batched");
        self.c.results.push(result);
    }

    /// End the group (kept for Criterion API symmetry).
    pub fn finish(self) {}
}

/// Passed to each benchmark closure; runs the measurement.
pub struct Bencher {
    group: String,
    name: String,
    sample_size: usize,
    throughput: Option<Throughput>,
    result: Option<BenchResult>,
}

impl Bencher {
    /// Measure `routine` directly.
    pub fn iter<R>(&mut self, mut routine: impl FnMut() -> R) {
        self.result = Some(time_fn(
            &self.group,
            &self.name,
            self.sample_size,
            self.throughput,
            || {
                std::hint::black_box(routine());
            },
        ));
    }

    /// Measure `routine` over fresh inputs from `setup`; setup cost is
    /// included in the calibration run but excluded from samples by
    /// timing only the routine.
    pub fn iter_batched<I, R>(
        &mut self,
        mut setup: impl FnMut() -> I,
        mut routine: impl FnMut(I) -> R,
        _size: BatchSize,
    ) {
        // calibrate on the combined cost, then time routine-only samples
        let mut iters = 1u64;
        loop {
            let t0 = Instant::now();
            for _ in 0..iters {
                std::hint::black_box(routine(setup()));
            }
            if t0.elapsed() >= Duration::from_millis(1) || iters >= 1 << 20 {
                break;
            }
            iters *= 2;
        }
        let mut per_iter_ns = Vec::with_capacity(self.sample_size);
        for _ in 0..self.sample_size {
            let inputs: Vec<I> = (0..iters).map(|_| setup()).collect();
            let t0 = Instant::now();
            for input in inputs {
                std::hint::black_box(routine(input));
            }
            per_iter_ns.push(t0.elapsed().as_nanos() as f64 / iters as f64);
        }
        self.result = Some(stats(
            &self.group,
            &self.name,
            iters,
            per_iter_ns,
            self.throughput,
        ));
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn time_fn_produces_sane_stats() {
        let mut acc = 0u64;
        let r = time_fn("g", "spin", 10, Some(Throughput::Elements(100)), || {
            for i in 0..100u64 {
                acc = acc.wrapping_add(std::hint::black_box(i));
            }
        });
        assert!(r.median_ns > 0.0);
        assert!(r.min_ns <= r.median_ns);
        assert!(r.median_ns <= r.p95_ns);
        assert!(r.p95_ns <= r.max_ns);
        assert!(r.per_sec().unwrap() > 0.0);
        assert_eq!(r.samples, 10);
    }

    #[test]
    fn json_output_roundtrips_through_parser() {
        let results = vec![
            BenchResult {
                group: "classify".to_string(),
                name: "hit \"quoted\"\n".to_string(),
                iters_per_sample: 1024,
                samples: 30,
                median_ns: 123.456,
                p95_ns: 234.5,
                mean_ns: 150.0,
                min_ns: 100.0,
                max_ns: 400.25,
                throughput: Some(Throughput::Elements(1)),
            },
            BenchResult {
                group: "ingest".to_string(),
                name: "deposit".to_string(),
                iters_per_sample: 8,
                samples: 20,
                median_ns: 1e6,
                p95_ns: 2e6,
                mean_ns: 1.1e6,
                min_ns: 0.9e6,
                max_ns: 3e6,
                throughput: None,
            },
        ];
        let text = results_to_json(&results);
        let parsed = Json::parse(&text).expect("emitted JSON must parse");
        assert_eq!(
            parsed.get("schema").and_then(Json::as_str),
            Some("bistro-bench-v1")
        );
        let arr = parsed.get("results").and_then(Json::as_arr).unwrap();
        assert_eq!(arr.len(), 2);
        assert_eq!(
            arr[0].get("name").and_then(Json::as_str),
            Some("hit \"quoted\"\n")
        );
        assert_eq!(
            arr[0].get("median_ns").and_then(Json::as_num),
            Some(123.456)
        );
        let tp = arr[0].get("throughput").unwrap();
        assert_eq!(tp.get("unit").and_then(Json::as_str), Some("elements"));
        // per_sec consistency: units / median seconds
        let per_sec = tp.get("per_sec").and_then(Json::as_num).unwrap();
        assert!((per_sec - 1.0 / (123.456 / 1e9)).abs() / per_sec < 1e-9);
        assert!(arr[1].get("throughput").is_none());
        // re-render the parsed tree: parse again and compare trees
        let rerendered = parsed.render();
        assert_eq!(Json::parse(&rerendered).unwrap(), parsed);
    }

    #[test]
    fn criterion_shim_collects_results() {
        let mut c = Criterion::new();
        {
            let mut g = c.benchmark_group("math");
            g.sample_size(5);
            g.throughput(Throughput::Elements(1));
            g.bench_function("add", |b| {
                b.iter(|| std::hint::black_box(2u64) + std::hint::black_box(3u64))
            });
            g.bench_function("batched", |b| {
                b.iter_batched(
                    || vec![1u64; 16],
                    |v| v.iter().sum::<u64>(),
                    BatchSize::SmallInput,
                )
            });
            g.finish();
        }
        assert_eq!(c.results().len(), 2);
        assert!(c.results().iter().all(|r| r.median_ns > 0.0));
    }

    fn fake(group: &str, name: &str) -> BenchResult {
        BenchResult {
            group: group.to_string(),
            name: name.to_string(),
            iters_per_sample: 1,
            samples: 5,
            median_ns: 10.0,
            p95_ns: 10.0,
            mean_ns: 10.0,
            min_ns: 10.0,
            max_ns: 10.0,
            throughput: Some(Throughput::Elements(1)),
        }
    }

    #[test]
    fn merge_replaces_own_group_and_preserves_others() {
        let existing = results_to_json(&[
            fake("server_ingest_100_feeds", "deposit_60000b"),
            fake("fanout_group_delivery", "deposit_g1_m1"),
        ]);
        let fresh = vec![fake("fanout_group_delivery", "deposit_g100_m100")];
        let merged = merge_results(Some(&existing), &fresh, "fanout_group_delivery").unwrap();
        let names: Vec<&str> = merged.iter().map(|r| r.name.as_str()).collect();
        assert_eq!(names, vec!["deposit_60000b", "deposit_g100_m100"]);
        // the preserved entry round-trips its numbers
        assert_eq!(merged[0].group, "server_ingest_100_feeds");
        assert_eq!(merged[0].median_ns, 10.0);
        assert_eq!(merged[0].throughput, Some(Throughput::Elements(1)));
    }

    #[test]
    fn merge_without_existing_document_keeps_fresh_only() {
        let fresh = vec![fake("fanout_group_delivery", "deposit_g100_m100")];
        let merged = merge_results(None, &fresh, "fanout_group_delivery").unwrap();
        assert_eq!(merged.len(), 1);
    }

    #[test]
    fn merge_rejects_malformed_documents() {
        let fresh = vec![fake("fanout_group_delivery", "x")];
        assert!(merge_results(Some("not json"), &fresh, "fanout_group_delivery").is_err());
        assert!(merge_results(
            Some("{\"schema\":\"other\",\"results\":[]}"),
            &fresh,
            "fanout_group_delivery"
        )
        .is_err());
    }
}
