//! E1 — pull-based polling cost versus stored history (paper §2.2.1).
//!
//! Claim: "As a stored feed history stored on a feed provider grows, the
//! cost of the filesystem metadata operations (such as performing
//! directory listing) grows linearly with the history size", multiplied
//! by uncoordinated subscribers all scanning independently. Bistro's
//! notification-driven landing zone touches only the new files.

use crate::table::Table;
use bistro_base::SimClock;
use bistro_core::baselines::PullPoller;
use bistro_vfs::{FileStore, MemFs};
use std::sync::Arc;

/// One measured point.
#[derive(Clone, Debug)]
pub struct Point {
    /// Files of stored history on the provider.
    pub history: usize,
    /// Metadata ops for ONE steady-state poll by one subscriber.
    pub pull_ops_per_poll: u64,
    /// Metadata ops per poll round for `subscribers` uncoordinated pollers.
    pub pull_ops_all_subs: u64,
    /// Metadata ops for Bistro to ingest + deliver one new file
    /// (landing-zone move + staging write + receipt, amortized over a
    /// batch of new files).
    pub bistro_ops_per_file: f64,
}

/// Build a provider with `history` staged files (100 per directory, the
/// daily-directory layout the paper describes).
fn provider(history: usize) -> Arc<MemFs> {
    let fs = MemFs::shared(SimClock::new());
    for i in 0..history {
        fs.write(&format!("staging/F/day{:04}/f{i:06}.csv", i / 100), b"data")
            .unwrap();
    }
    fs
}

/// Run the sweep.
pub fn run(histories: &[usize], subscribers: u64) -> Vec<Point> {
    let mut out = Vec::new();
    for &history in histories {
        let fs = provider(history);
        let mut poller = PullPoller::new("staging");
        poller.poll(fs.as_ref()).unwrap(); // initial catch-up
        let before = fs.stats().snapshot();
        poller.poll(fs.as_ref()).unwrap(); // steady-state: nothing new
        let per_poll = fs.stats().snapshot().since(&before).metadata_ops();

        // Bistro: ingest a fresh batch of files through a landing zone.
        // The landing zone is kept empty, so the scan sees only new data.
        let new_files = 100usize;
        let bistro_fs = provider(history);
        for i in 0..new_files {
            bistro_fs
                .write(&format!("landing/new{i:04}.csv"), b"data")
                .unwrap();
        }
        let before = bistro_fs.stats().snapshot();
        // landing scan + per-file move to staging (what Server::scan_landing does)
        let landed = bistro_vfs::walk_files(bistro_fs.as_ref(), "landing").unwrap();
        for f in &landed {
            let name = f.strip_prefix("landing/").unwrap();
            bistro_fs
                .rename(f, &format!("staging/F/new/{name}"))
                .unwrap();
        }
        let bistro_ops =
            bistro_fs.stats().snapshot().since(&before).metadata_ops() + landed.len() as u64; // renames counted separately
        out.push(Point {
            history,
            pull_ops_per_poll: per_poll,
            pull_ops_all_subs: per_poll * subscribers,
            bistro_ops_per_file: bistro_ops as f64 / new_files as f64,
        });
    }
    out
}

/// Render the experiment table.
pub fn table(points: &[Point], subscribers: u64) -> Table {
    let mut t = Table::new(
        &format!("E1: steady-state metadata ops — pull polling vs Bistro landing zone ({subscribers} subscribers)"),
        &[
            "history (files)",
            "pull ops/poll (1 sub)",
            &format!("pull ops/poll ({subscribers} subs)"),
            "bistro ops per new file",
        ],
    );
    for p in points {
        t.row(vec![
            p.history.to_string(),
            p.pull_ops_per_poll.to_string(),
            p.pull_ops_all_subs.to_string(),
            format!("{:.1}", p.bistro_ops_per_file),
        ]);
    }
    t
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pull_cost_scales_linearly_bistro_flat() {
        let points = run(&[1_000, 4_000], 10);
        let ratio = points[1].pull_ops_per_poll as f64 / points[0].pull_ops_per_poll as f64;
        assert!(
            (3.0..6.0).contains(&ratio),
            "4x history should cost ~4x per poll, got {ratio:.2}x"
        );
        // Bistro per-file cost is independent of history
        let b_ratio = points[1].bistro_ops_per_file / points[0].bistro_ops_per_file;
        assert!(
            (0.8..1.2).contains(&b_ratio),
            "bistro cost must not scale with history, got {b_ratio:.2}x"
        );
        // and far cheaper than even a single poll over real history
        assert!(points[1].bistro_ops_per_file * 100.0 < points[1].pull_ops_per_poll as f64);
    }
}
