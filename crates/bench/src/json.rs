//! A minimal JSON document model for the `BENCH_*.json` result files.
//!
//! The implementation moved to `bistro-telemetry` (the snapshot exporter
//! and the bench emitter share one model); this module re-exports it so
//! existing `bench::json::Json` paths keep working.

pub use bistro_telemetry::json::Json;
