//! # bistro-bench
//!
//! The experiment harness. The Bistro paper (industrial track) has no
//! numbered result tables; its evaluation content is a set of
//! quantitative claims embedded in the text. Each module here
//! regenerates one of them as a measured table — see DESIGN.md §4 for
//! the experiment index and EXPERIMENTS.md for recorded results.
//!
//! Every experiment has a binary (`cargo run --release -p bistro-bench
//! --bin exp_e1` …) printing a markdown table, and the hot kernels are
//! additionally covered by the in-tree micro-benchmark harness
//! ([`harness`], `cargo bench`), which emits machine-readable
//! `BENCH_*.json` result files — the canonical perf trajectory.

pub mod harness;
pub mod json;

pub mod e10_false_positives;
pub mod e11_throughput;
pub mod e13_failover;
pub mod e14_fanout;
pub mod e1_pull_scan;
pub mod e2_rsync;
pub mod e3_propagation;
pub mod e4_batching;
pub mod e5_reliability;
pub mod e6_scheduling;
pub mod e7_backfill;
pub mod e8_discovery;
pub mod e9_false_negatives;
pub mod table;

pub use table::Table;
