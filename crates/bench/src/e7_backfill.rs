//! E7 — backfill strategy: in-order vs concurrent (§4.3).
//!
//! Claim: "One strategy is to guarantee that data feeds will be delivered
//! in the same order they were received by DFMS. However, this approach
//! sacrifices the real-time delivery guarantees … Alternatively, we can
//! relax the requirement for in-order feed delivery and deliver new data
//! in real-time concurrently with backfilling of missed historical data.
//! Given Bistro focus on real-time applications we implemented the latter
//! strategy."
//!
//! A subscriber recovers from an outage with a backlog of historical
//! files while its real-time stream keeps flowing; we sweep the backlog
//! size and compare the two strategies' real-time tardiness and total
//! drain time.

use crate::table::Table;
use bistro_base::{TimePoint, TimeSpan};
use bistro_scheduler::{BackfillMode, Engine, EngineConfig, JobSpec, PolicyKind, SubscriberSpec};

const MB: u64 = 1_000_000;

/// One strategy at one backlog size.
#[derive(Clone, Debug)]
pub struct Point {
    /// Strategy label.
    pub mode: String,
    /// Backlog files.
    pub backlog: usize,
    /// Real-time stream p95 tardiness.
    pub rt_p95: TimeSpan,
    /// Real-time deadline miss rate.
    pub rt_miss: f64,
    /// When the last backfill file landed.
    pub backlog_drained: TimePoint,
}

fn measure(mode: BackfillMode, backlog: usize) -> Point {
    let mut cfg = EngineConfig::global(2, PolicyKind::Edf);
    cfg.backfill = mode;
    let mut eng = Engine::new(cfg);
    eng.add_subscriber(SubscriberSpec::simple(1, 10 * MB));

    let mut id = 0u64;
    // backlog: historical 10MB files (1s service each), lenient deadlines
    for _ in 0..backlog {
        let mut j = JobSpec::new(id, 1, 0, 100_000, 10 * MB);
        j.backfill = true;
        j.file_key = id;
        eng.add_job(j);
        id += 1;
    }
    // real-time stream: 2MB file every 5s for 15 min, 10s deadline
    for i in 0..180u64 {
        let mut j = JobSpec::new(id, 1, 5 * i, 5 * i + 10, 2 * MB);
        j.file_key = id;
        eng.add_job(j);
        id += 1;
    }
    let report = eng.run();
    let rt = report.realtime_only();
    let drained = report
        .outcomes
        .iter()
        .filter(|o| o.backfill)
        .filter_map(|o| o.completed)
        .max()
        .unwrap_or(TimePoint::EPOCH);
    Point {
        mode: match mode {
            BackfillMode::InOrder => "in-order".to_string(),
            BackfillMode::Concurrent => "concurrent (Bistro)".to_string(),
        },
        backlog,
        rt_p95: rt.p95_tardiness,
        rt_miss: rt.miss_rate(),
        backlog_drained: drained,
    }
}

/// Run the sweep.
pub fn run(backlogs: &[usize]) -> Vec<Point> {
    let mut out = Vec::new();
    for &b in backlogs {
        out.push(measure(BackfillMode::InOrder, b));
        out.push(measure(BackfillMode::Concurrent, b));
    }
    out
}

/// Render the experiment table.
pub fn table(points: &[Point]) -> Table {
    let mut t = Table::new(
        "E7: backfill strategy — real-time tardiness while draining a backlog",
        &[
            "backlog files",
            "strategy",
            "real-time p95 tardiness",
            "real-time miss rate",
            "backlog drained at",
        ],
    );
    for p in points {
        t.row(vec![
            p.backlog.to_string(),
            p.mode.clone(),
            p.rt_p95.to_string(),
            format!("{:.1}%", p.rt_miss * 100.0),
            format!("t+{}", p.backlog_drained.since(TimePoint::EPOCH)),
        ]);
    }
    t
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn concurrent_protects_realtime_inorder_does_not() {
        let points = run(&[100]);
        let inorder = &points[0];
        let concurrent = &points[1];
        assert_eq!(concurrent.rt_miss, 0.0, "{concurrent:?}");
        assert!(inorder.rt_miss > 0.05, "{inorder:?}");
        assert!(inorder.rt_p95 > concurrent.rt_p95);
        // both eventually drain the backlog
        assert!(concurrent.backlog_drained > TimePoint::EPOCH);
        assert!(inorder.backlog_drained > TimePoint::EPOCH);
    }
}
