//! E6 — delivery scheduling policies (§4.3).
//!
//! Claims: "Most known real-time scheduling algorithms do not work well
//! in a system with several constrained resources"; "slow and overloaded
//! subscribers \[must\] not starve more responsive ones"; Bistro
//! "partition\[s\] subscribers into several levels based on their overall
//! responsiveness … intra-partition scheduling is much easier and many
//! scheduling algorithms including EDF work very well"; plus the
//! locality heuristic ("delivery of a file to several subscribers within
//! a group is performed concurrently whenever possible").
//!
//! Workload: 4 fast subscribers with a tight real-time stream + 2 very
//! slow subscribers with a large early-deadline backlog, 3 workers.
//! We sweep every global policy and the partitioned scheduler, and
//! run the locality ablation.

use crate::table::Table;
use bistro_base::TimeSpan;
use bistro_scheduler::{
    classify_subscribers, observed_throughput, Engine, EngineConfig, JobSpec, PolicyKind,
    SubscriberSpec,
};
use std::collections::HashMap;

const MB: u64 = 1_000_000;

/// One scheduler configuration's results.
#[derive(Clone, Debug)]
pub struct Point {
    /// Configuration label.
    pub config: String,
    /// Fast-class (class 0) p95 tardiness.
    pub fast_p95: TimeSpan,
    /// Fast-class max tardiness.
    pub fast_max: TimeSpan,
    /// Fast-class deadline miss rate.
    pub fast_miss: f64,
    /// Slow-class max tardiness (they're expected to be late; the point
    /// is they don't drag class 0 down).
    pub slow_max: TimeSpan,
    /// Storage cache hit fraction.
    pub cache_hit_frac: f64,
}

fn workload(eng: &mut Engine) {
    // 4 fast subscribers (class 0), 100 MB/s
    for s in 1..=4 {
        let mut sub = SubscriberSpec::simple(s, 100 * MB);
        sub.class = 0;
        eng.add_subscriber(sub);
    }
    // 2 slow subscribers (class 1), 0.2 MB/s
    for s in 5..=6 {
        let mut sub = SubscriberSpec::simple(s, MB / 5);
        sub.class = 1;
        eng.add_subscriber(sub);
    }
    let mut id = 0u64;
    // slow backlog: 30 × 10MB files each, deadlines already passed
    for s in 5..=6 {
        for i in 0..30 {
            let mut j = JobSpec::new(id, s, 0, 1 + i, 10 * MB);
            j.file_key = 10_000 + i; // the two slow subs share files
            eng.add_job(j);
            id += 1;
        }
    }
    // fast real-time stream: every 10s for 10 min, 30s deadline, each
    // file goes to all 4 fast subscribers (locality opportunity)
    for i in 0..60u64 {
        for s in 1..=4 {
            let mut j = JobSpec::new(id, s, 10 * i, 10 * i + 30, 20 * MB);
            j.file_key = 20_000 + i;
            eng.add_job(j);
            id += 1;
        }
    }
}

fn measure(label: &str, cfg: EngineConfig) -> Point {
    let mut eng = Engine::new(cfg);
    workload(&mut eng);
    let report = eng.run();
    let per_class = report.per_class();
    let fast = &per_class[&0];
    let slow = &per_class[&1];
    Point {
        config: label.to_string(),
        fast_p95: fast.p95_tardiness,
        fast_max: fast.max_tardiness,
        fast_miss: fast.miss_rate(),
        slow_max: slow.max_tardiness,
        cache_hit_frac: report.cache_hits as f64
            / (report.cache_hits + report.cache_misses).max(1) as f64,
    }
}

/// Run the policy sweep plus the partitioned scheduler and the locality
/// ablation.
pub fn run() -> Vec<Point> {
    let mut out = Vec::new();
    for policy in PolicyKind::all() {
        out.push(measure(
            &format!("global {} (3 workers)", policy.name()),
            EngineConfig::global(3, policy),
        ));
    }
    out.push(measure(
        "partitioned EDF [2 fast, 1 slow]",
        EngineConfig::partitioned(&[2, 1]),
    ));
    let mut no_locality = EngineConfig::partitioned(&[2, 1]);
    no_locality.locality_slack = None;
    out.push(measure("partitioned EDF, locality OFF", no_locality));
    out.push(measure_auto_partitioned());
    out
}

/// The §4.3 future-work arm: derive subscriber classes from *observed*
/// behaviour instead of hand labels. A short calibration run under
/// global EDF yields per-subscriber throughput; `classify_subscribers`
/// splits them; the real run uses the derived classes.
fn measure_auto_partitioned() -> Point {
    // calibration: the same workload, observed under global EDF
    let mut calib = Engine::new(EngineConfig::global(3, PolicyKind::Edf));
    workload(&mut calib);
    let mut sizes: HashMap<u64, u64> = HashMap::new();
    {
        // re-derive job sizes from the workload builder (ids are stable)
        let mut probe = Engine::new(EngineConfig::global(1, PolicyKind::Edf));
        workload(&mut probe);
        for (id, job) in probe.jobs() {
            sizes.insert(*id, job.size);
        }
    }
    let calib_report = calib.run();
    let throughput = observed_throughput(&calib_report, &sizes);
    let derived = classify_subscribers(&throughput, 2);

    // real run: partitioned, with classes assigned from observation
    let mut eng = Engine::new(EngineConfig::partitioned(&[2, 1]));
    for s in 1..=4u64 {
        let mut sub = SubscriberSpec::simple(s, 100 * MB);
        sub.class = derived[&bistro_base::SubscriberId(s)];
        eng.add_subscriber(sub);
    }
    for s in 5..=6u64 {
        let mut sub = SubscriberSpec::simple(s, MB / 5);
        sub.class = derived[&bistro_base::SubscriberId(s)];
        eng.add_subscriber(sub);
    }
    // jobs identical to `workload`, but classes come from `derived`
    let mut probe = Engine::new(EngineConfig::global(1, PolicyKind::Edf));
    workload(&mut probe);
    for (_, job) in probe.jobs() {
        eng.add_job(job.clone());
    }
    let report = eng.run();
    let per_class = report.per_class();
    let fast = &per_class[&0];
    let slow = per_class.get(&1).cloned().unwrap_or_default();
    Point {
        config: "auto-partitioned (observed classes)".to_string(),
        fast_p95: fast.p95_tardiness,
        fast_max: fast.max_tardiness,
        fast_miss: fast.miss_rate(),
        slow_max: slow.max_tardiness,
        cache_hit_frac: report.cache_hits as f64
            / (report.cache_hits + report.cache_misses).max(1) as f64,
    }
}

/// Render the experiment table.
pub fn table(points: &[Point]) -> Table {
    let mut t = Table::new(
        "E6: scheduling policies — fast class must not starve behind slow backlog",
        &[
            "configuration",
            "fast p95 tardiness",
            "fast max tardiness",
            "fast miss rate",
            "slow max tardiness",
            "cache hit rate",
        ],
    );
    for p in points {
        t.row(vec![
            p.config.clone(),
            p.fast_p95.to_string(),
            p.fast_max.to_string(),
            format!("{:.1}%", p.fast_miss * 100.0),
            p.slow_max.to_string(),
            format!("{:.0}%", p.cache_hit_frac * 100.0),
        ]);
    }
    t
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn partitioned_beats_global_edf_for_fast_class() {
        let points = run();
        let global_edf = points
            .iter()
            .find(|p| p.config.starts_with("global EDF ("))
            .unwrap();
        let parted = points
            .iter()
            .find(|p| p.config.starts_with("partitioned EDF ["))
            .unwrap();
        assert!(
            parted.fast_max < global_edf.fast_max,
            "partitioned {:?} should beat global {:?}",
            parted.fast_max,
            global_edf.fast_max
        );
        assert_eq!(parted.fast_miss, 0.0, "{parted:?}");
    }

    #[test]
    fn locality_improves_cache_hits() {
        let points = run();
        let with = points
            .iter()
            .find(|p| p.config.starts_with("partitioned EDF ["))
            .unwrap();
        let without = points
            .iter()
            .find(|p| p.config.ends_with("locality OFF"))
            .unwrap();
        assert!(
            with.cache_hit_frac >= without.cache_hit_frac,
            "locality should not reduce hits: {} vs {}",
            with.cache_hit_frac,
            without.cache_hit_frac
        );
    }
}

#[cfg(test)]
mod adaptive_tests {
    use super::*;

    #[test]
    fn auto_partitioning_matches_hand_labels() {
        let auto = measure_auto_partitioned();
        // derived classes must isolate the fast subscribers just like the
        // hand-labelled partitioning does
        assert_eq!(auto.fast_miss, 0.0, "{auto:?}");
        assert_eq!(auto.fast_max, TimeSpan::ZERO, "{auto:?}");
    }
}
