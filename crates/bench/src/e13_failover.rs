//! E13 — multi-server failover with exactly-once re-homing.
//!
//! Claim under test: when a feed group's home server dies mid-trace,
//! the cluster layer (directory + heartbeats + standby replication +
//! receipt-store backfill) re-homes the group's subscribers such that
//! every file is delivered **exactly once** across the failover — the
//! new home neither re-sends what the dead home already delivered nor
//! drops what it hadn't. We also measure how long promotion takes from
//! the instant of the (undetected) crash.
//!
//! Each seeded run partitions two feed groups across three servers,
//! drives a `bistro-simnet` partitioned fleet through the cluster
//! ingress, kills the `ALPHA` home when half the trace has landed, and
//! accounts for every wire delivery on both sides of the promotion.

use crate::table::Table;
use bistro_base::{Clock, SimClock, TimePoint, TimeSpan};
use bistro_config::{parse_config, BatchSpec, DeliveryMode, SubscriberDef};
use bistro_core::cluster::Cluster;
use bistro_core::Server;
use bistro_simnet::{generate, partitioned_config, partitioned_fleet};
use bistro_transport::{LinkSpec, SimNetwork};
use bistro_vfs::MemFs;
use std::sync::Arc;

/// The outcome of one seeded failover run.
#[derive(Clone, Debug)]
pub struct Outcome {
    /// RNG seed of the run.
    pub seed: u64,
    /// Files in the whole trace (both groups).
    pub files: usize,
    /// Files belonging to the failed group.
    pub alpha_files: usize,
    /// Wire deliveries by the home before the kill.
    pub delivered_before: u64,
    /// Wire deliveries by the promoted standby after re-homing.
    pub delivered_after: u64,
    /// Receipts the backfill marked as already-delivered (not re-sent).
    pub backfill_marked: u64,
    /// Crash → directory reassignment, as observed by the driver loop.
    pub promotion: TimeSpan,
    /// `delivered_before + delivered_after == alpha_files` with the
    /// backfill marking exactly the pre-kill deliveries.
    pub exactly_once: bool,
}

fn subscriber(name: &str, target: &str) -> SubscriberDef {
    SubscriberDef {
        name: name.to_string(),
        endpoint: format!("{name}:7070"),
        subscriptions: vec![target.to_string()],
        delivery: DeliveryMode::Push,
        deadline: TimeSpan::from_secs(60),
        batch: BatchSpec::default(),
        trigger: None,
        dest: None,
    }
}

/// Run one seeded kill-and-promote schedule.
pub fn run_one(seed: u64, minutes: u64) -> Outcome {
    let start = TimePoint::from_secs(1_285_372_800);
    let clock = SimClock::starting_at(start);
    let net = Arc::new(SimNetwork::new(LinkSpec {
        bandwidth: 10_000_000,
        latency: TimeSpan::from_millis(5),
    }));
    let cfg_src = partitioned_config(&[("ALPHA", "failover"), ("BETA", "failover")], 2);
    let fleet = partitioned_fleet(&["ALPHA", "BETA"], 2, 2, TimeSpan::from_mins(minutes), seed);
    let trace = generate(&fleet);

    let mut cluster = Cluster::new(
        parse_config(&cfg_src).unwrap(),
        net.clone(),
        TimeSpan::from_secs(1),
        TimeSpan::from_secs(5),
    );
    for name in ["s1", "s2", "s3"] {
        let server = Server::new(
            name,
            parse_config(&cfg_src).unwrap(),
            clock.clone(),
            MemFs::shared(clock.clone()),
        )
        .unwrap()
        .with_network(net.clone());
        cluster.add_server(server).unwrap();
    }
    cluster.assign("ALPHA", "s1", &["s2"]).unwrap();
    cluster.assign("BETA", "s3", &["s2"]).unwrap();
    cluster
        .register_subscriber(&subscriber("wh", "ALPHA"))
        .unwrap();
    cluster
        .register_subscriber(&subscriber("cap", "BETA"))
        .unwrap();

    let kill_at = trace[trace.len() / 2].deposit_time;
    let end = trace.last().unwrap().deposit_time + TimeSpan::from_secs(60);
    let mut i = 0;
    let mut killed = false;
    let mut delivered_before = 0;
    let mut promoted_at: Option<TimePoint> = None;
    while clock.now() < end {
        clock.advance(TimeSpan::from_secs(1));
        let now = clock.now();
        if !killed && now >= kill_at {
            delivered_before = cluster
                .server("s1")
                .unwrap()
                .telemetry()
                .counter_value("delivery.receipts")
                .unwrap_or(0);
            cluster.kill("s1").unwrap();
            killed = true;
        }
        while i < trace.len() && trace[i].deposit_time <= now {
            cluster
                .route_deposit(&trace[i].name, trace[i].name.as_bytes(), now)
                .unwrap();
            i += 1;
        }
        cluster.tick(now).unwrap();
        cluster.pump(now).unwrap();
        if killed
            && promoted_at.is_none()
            && cluster.directory().home_of("ALPHA").unwrap().home == "s2"
        {
            promoted_at = Some(now);
        }
    }

    let alpha_files = trace
        .iter()
        .filter(|f| f.name.starts_with("ALPHA_"))
        .count();
    let delivered_after = cluster
        .server("s2")
        .unwrap()
        .telemetry()
        .counter_value("delivery.receipts")
        .unwrap_or(0);
    let backfill_marked = cluster
        .telemetry()
        .counter_value("cluster.backfill_marked")
        .unwrap_or(0);
    Outcome {
        seed,
        files: trace.len(),
        alpha_files,
        delivered_before,
        delivered_after,
        backfill_marked,
        promotion: promoted_at
            .map(|t| t.since(kill_at))
            .unwrap_or(TimeSpan::from_secs(0)),
        exactly_once: backfill_marked == delivered_before
            && delivered_before + delivered_after == alpha_files as u64,
    }
}

/// Run the schedule across several seeds.
pub fn run(seeds: &[u64], minutes: u64) -> Vec<Outcome> {
    seeds.iter().map(|&s| run_one(s, minutes)).collect()
}

/// Render the outcomes.
pub fn table(outcomes: &[Outcome]) -> Table {
    let mut t = Table::new(
        "E13 — partitioned-feed failover: exactly-once re-homing",
        &[
            "seed",
            "files",
            "alpha",
            "pre-kill",
            "post-kill",
            "marked",
            "promotion",
            "exactly-once",
        ],
    );
    for o in outcomes {
        t.row(vec![
            o.seed.to_string(),
            o.files.to_string(),
            o.alpha_files.to_string(),
            o.delivered_before.to_string(),
            o.delivered_after.to_string(),
            o.backfill_marked.to_string(),
            format!("{}", o.promotion),
            if o.exactly_once { "yes" } else { "NO" }.to_string(),
        ]);
    }
    t
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn failover_is_exactly_once_across_seeds() {
        for o in run(&[1, 42, 0xB157], 40) {
            assert!(o.exactly_once, "seed {}: {o:?}", o.seed);
            assert!(o.delivered_before > 0, "home delivered before the kill");
            assert!(o.delivered_after > 0, "standby delivered after promotion");
            assert!(
                o.promotion > TimeSpan::from_secs(0),
                "promotion observed after the kill"
            );
        }
    }

    #[test]
    fn table_shape() {
        let t = table(&run(&[7], 30));
        assert_eq!(t.rows().len(), 1);
        assert_eq!(t.rows()[0].len(), 8);
    }
}
