//! E8 — new-feed discovery accuracy on aggregate feeds (§5.1).
//!
//! Claim: real feeds contain "more than a hundred individual subfeeds";
//! "in some extreme cases we observed feeds with more than half of the
//! files falling into 'unknown feed' category"; the discovery module
//! "automates the process of discovery of new feeds by generating a list
//! of suggested feed definitions".
//!
//! We generate an aggregate feed with a known ground truth of subfeeds,
//! run discovery over the unmatched stream, and score the suggestions:
//! a suggestion is *correct* if its pattern matches files of exactly one
//! ground-truth subfeed and covers all of them.

use crate::table::Table;
use bistro_analyzer::FeedDiscoverer;
use bistro_base::TimeSpan;
use bistro_simnet::{aggregate_feed, generate};
use std::collections::{BTreeMap, BTreeSet};

/// Discovery quality at one scale.
#[derive(Clone, Debug)]
pub struct Point {
    /// Ground-truth subfeeds.
    pub subfeeds: usize,
    /// Files generated.
    pub files: usize,
    /// Suggestions emitted.
    pub suggested: usize,
    /// Suggestions matching exactly one subfeed completely.
    pub correct: usize,
    /// Precision = correct / suggested.
    pub precision: f64,
    /// Recall = ground-truth subfeeds covered by a correct suggestion.
    pub recall: f64,
    /// Discovery wall time (ms).
    pub millis: u64,
}

/// Run discovery at the given scales (numbers of subfeeds).
pub fn run(scales: &[usize], pollers: u32, hours: u64) -> Vec<Point> {
    let mut out = Vec::new();
    for &n in scales {
        let cfg = aggregate_feed(n, pollers, TimeSpan::from_hours(hours), 1234);
        let files = generate(&cfg);
        // ground truth: subfeed → its filenames
        let mut truth: BTreeMap<String, Vec<String>> = BTreeMap::new();
        for f in &files {
            truth
                .entry(f.subfeed.clone())
                .or_default()
                .push(f.name.clone());
        }

        let t0 = std::time::Instant::now();
        let mut disc = FeedDiscoverer::new();
        for f in &files {
            disc.observe(&f.name);
        }
        let suggestions = disc.suggestions(3);
        let millis = t0.elapsed().as_millis() as u64;

        let mut covered: BTreeSet<&String> = BTreeSet::new();
        let mut correct = 0usize;
        for s in &suggestions {
            // which subfeeds does this pattern touch?
            let mut touched: Vec<(&String, usize, usize)> = Vec::new(); // (feed, matched, total)
            for (feed, names) in &truth {
                let m = names.iter().filter(|n| s.pattern.is_match(n)).count();
                if m > 0 {
                    touched.push((feed, m, names.len()));
                }
            }
            if touched.len() == 1 && touched[0].1 == touched[0].2 {
                correct += 1;
                covered.insert(touched[0].0);
            }
        }
        out.push(Point {
            subfeeds: n,
            files: files.len(),
            suggested: suggestions.len(),
            correct,
            precision: correct as f64 / suggestions.len().max(1) as f64,
            recall: covered.len() as f64 / truth.len().max(1) as f64,
            millis,
        });
    }
    out
}

/// Render the experiment table.
pub fn table(points: &[Point]) -> Table {
    let mut t = Table::new(
        "E8: new-feed discovery on aggregate feeds (ground-truth scoring)",
        &[
            "subfeeds",
            "files",
            "suggested",
            "correct",
            "precision",
            "recall",
            "time (ms)",
        ],
    );
    for p in points {
        t.row(vec![
            p.subfeeds.to_string(),
            p.files.to_string(),
            p.suggested.to_string(),
            p.correct.to_string(),
            format!("{:.2}", p.precision),
            format!("{:.2}", p.recall),
            p.millis.to_string(),
        ]);
    }
    t
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn discovery_accuracy_at_paper_scale() {
        // "more than a hundred individual subfeeds"
        let points = run(&[25, 100], 4, 6);
        for p in &points {
            assert!(p.precision >= 0.9, "{p:?}");
            assert!(p.recall >= 0.9, "{p:?}");
        }
        assert!(points[1].files > 5_000, "{points:?}");
    }
}
