//! E4 — batch-boundary policies under unreliable pollers (§2.3, §4.1).
//!
//! Claims: count-based batching "is not very robust in the presence of
//! unreliable or dynamically changing data feeds … it will not only delay
//! the notification till a first file for the next time interval arrives,
//! but will also generate notification in the middle of the next
//! interval"; time-based batching "is also prone to delays"; "a
//! combination of count and time-based batch specification works well in
//! practice"; explicit punctuation is exact.
//!
//! We replay a fleet of 3 pollers at 5-minute intervals with a sweep of
//! skip probabilities, and measure per-policy: mean/max notification
//! delay (batch close − interval end) and the fraction of *mixed*
//! batches (containing files from more than one interval).

use crate::table::Table;
use bistro_base::{FileId, TimePoint, TimeSpan};
use bistro_config::BatchSpec;
use bistro_simnet::{generate, FleetConfig, SubfeedSpec};
use bistro_transport::{AdaptiveBatcher, Batcher};

/// One policy's measured behaviour at one skip rate.
#[derive(Clone, Debug)]
pub struct Point {
    /// Policy label.
    pub policy: String,
    /// Poller skip probability.
    pub skip_prob: f64,
    /// Batches emitted.
    pub batches: usize,
    /// Mean notification delay past the interval end.
    pub mean_delay: TimeSpan,
    /// Max notification delay.
    pub max_delay: TimeSpan,
    /// Fraction of batches mixing more than one interval.
    pub mixed_frac: f64,
}

struct Trace {
    /// (deposit time, file id, interval start)
    files: Vec<(TimePoint, FileId, TimePoint)>,
    period: TimeSpan,
}

fn trace(skip_prob: f64, seed: u64) -> Trace {
    let mut cfg = FleetConfig::standard(
        3,
        vec![SubfeedSpec::standard("MEMORY")],
        TimeSpan::from_hours(6),
    );
    cfg.skip_prob = skip_prob;
    cfg.seed = seed;
    cfg.delay_range = (TimeSpan::from_secs(1), TimeSpan::from_secs(30));
    let files = generate(&cfg);
    Trace {
        files: files
            .iter()
            .enumerate()
            .map(|(i, f)| (f.deposit_time, FileId(i as u64), f.feed_time))
            .collect(),
        period: TimeSpan::from_mins(5),
    }
}

/// Replay a trace through one batch spec. `punctuate` marks end-of-batch
/// after each interval's last file (the cooperative-source mode).
fn replay(trace: &Trace, spec: BatchSpec, punctuate: bool) -> Point {
    let mut batcher = Batcher::new(spec);
    let mut outcomes = Vec::new();
    let mut interval_of = std::collections::HashMap::new();
    for (_, id, interval) in &trace.files {
        interval_of.insert(*id, *interval);
    }

    let mut i = 0;
    while i < trace.files.len() {
        let (t, id, interval) = trace.files[i];
        // fire any lapsed window deadline first
        while let Some(deadline) = batcher.window_deadline() {
            if deadline <= t {
                if let Some(b) = batcher.on_tick(deadline) {
                    outcomes.push(b);
                }
            } else {
                break;
            }
        }
        if let Some(b) = batcher.on_file_at(id, t, Some(interval)) {
            outcomes.push(b);
        }
        // cooperative punctuation: this file is the last of its interval
        if punctuate {
            let last_of_interval = trace.files[i + 1..]
                .iter()
                .all(|(_, _, iv)| *iv != interval);
            if last_of_interval {
                if let Some(b) = batcher.on_punctuation(t) {
                    outcomes.push(b);
                }
            }
        }
        i += 1;
    }
    // close any trailing window
    if let Some(deadline) = batcher.window_deadline() {
        if let Some(b) = batcher.on_tick(deadline) {
            outcomes.push(b);
        }
    }

    // metrics: delay relative to the *interval end* of each batch's
    // earliest file (when the warehouse partition could first be complete)
    let mut delays: Vec<u64> = Vec::new();
    let mut mixed = 0usize;
    for b in &outcomes {
        let intervals: std::collections::BTreeSet<TimePoint> = b
            .files
            .iter()
            .filter_map(|f| interval_of.get(f).copied())
            .collect();
        if intervals.len() > 1 {
            mixed += 1;
        }
        if let Some(first_interval) = intervals.iter().next() {
            let interval_end = *first_interval + trace.period;
            delays.push(b.closed.since(interval_end).as_micros());
        }
    }
    let n = delays.len().max(1) as u64;
    Point {
        policy: String::new(),
        skip_prob: 0.0,
        batches: outcomes.len(),
        mean_delay: TimeSpan::from_micros(delays.iter().sum::<u64>() / n),
        max_delay: TimeSpan::from_micros(delays.iter().copied().max().unwrap_or(0)),
        mixed_frac: mixed as f64 / outcomes.len().max(1) as f64,
    }
}

/// Replay a trace through the adaptive (learned-gap) batcher — the
/// paper's §4.1 future-work direction, implemented in
/// `bistro_transport::adaptive`.
fn replay_adaptive(trace: &Trace) -> Point {
    let mut batcher = AdaptiveBatcher::new(6.0, TimeSpan::from_mins(10));
    let mut outcomes = Vec::new();
    let mut interval_of = std::collections::HashMap::new();
    for (_, id, interval) in &trace.files {
        interval_of.insert(*id, *interval);
    }
    for &(t, id, _) in &trace.files {
        while let Some(deadline) = batcher.tick_deadline() {
            if deadline <= t {
                if let Some(b) = batcher.on_tick(deadline) {
                    outcomes.push(b);
                }
            } else {
                break;
            }
        }
        if let Some(b) = batcher.on_file(id, t) {
            outcomes.push(b);
        }
    }
    if let Some(deadline) = batcher.tick_deadline() {
        if let Some(b) = batcher.on_tick(deadline + TimeSpan::from_hours(1)) {
            outcomes.push(b);
        }
    }

    let mut delays: Vec<u64> = Vec::new();
    let mut mixed = 0usize;
    for b in &outcomes {
        let intervals: std::collections::BTreeSet<TimePoint> = b
            .files
            .iter()
            .filter_map(|f| interval_of.get(f).copied())
            .collect();
        if intervals.len() > 1 {
            mixed += 1;
        }
        if let Some(first_interval) = intervals.iter().next() {
            delays.push(b.closed.since(*first_interval + trace.period).as_micros());
        }
    }
    let n = delays.len().max(1) as u64;
    Point {
        policy: "adaptive (learned gap)".to_string(),
        skip_prob: 0.0,
        batches: outcomes.len(),
        mean_delay: TimeSpan::from_micros(delays.iter().sum::<u64>() / n),
        max_delay: TimeSpan::from_micros(delays.iter().copied().max().unwrap_or(0)),
        mixed_frac: mixed as f64 / outcomes.len().max(1) as f64,
    }
}

/// Run the sweep over skip probabilities and policies.
pub fn run(skip_probs: &[f64]) -> Vec<Point> {
    let mut out = Vec::new();
    for &skip in skip_probs {
        let tr = trace(skip, 42);
        let policies: Vec<(&str, BatchSpec, bool)> = vec![
            (
                "count=3",
                BatchSpec {
                    count: Some(3),
                    window: None,
                },
                false,
            ),
            (
                "window=6m",
                BatchSpec {
                    count: None,
                    window: Some(TimeSpan::from_mins(6)),
                },
                false,
            ),
            (
                "hybrid count=3 window=6m",
                BatchSpec {
                    count: Some(3),
                    window: Some(TimeSpan::from_mins(6)),
                },
                false,
            ),
            (
                "punctuation",
                BatchSpec {
                    count: None,
                    window: Some(TimeSpan::from_mins(30)), // safety net only
                },
                true,
            ),
        ];
        for (name, spec, punct) in policies {
            let mut p = replay(&tr, spec, punct);
            p.policy = name.to_string();
            p.skip_prob = skip;
            out.push(p);
        }
        let mut p = replay_adaptive(&tr);
        p.skip_prob = skip;
        out.push(p);
    }
    out
}

/// Render the experiment table.
pub fn table(points: &[Point]) -> Table {
    let mut t = Table::new(
        "E4: batch policies under unreliable pollers (3 pollers, 5m intervals, 6h)",
        &[
            "skip prob",
            "policy",
            "batches",
            "mean delay",
            "max delay",
            "mixed-interval batches",
        ],
    );
    for p in points {
        t.row(vec![
            format!("{:.0}%", p.skip_prob * 100.0),
            p.policy.clone(),
            p.batches.to_string(),
            p.mean_delay.to_string(),
            p.max_delay.to_string(),
            format!("{:.0}%", p.mixed_frac * 100.0),
        ]);
    }
    t
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reliable_feed_count_is_perfect() {
        let points = run(&[0.0]);
        let count = points.iter().find(|p| p.policy == "count=3").unwrap();
        assert_eq!(count.mixed_frac, 0.0);
        assert!(count.mean_delay < TimeSpan::from_mins(1));
    }

    #[test]
    fn unreliable_feed_count_degrades_hybrid_robust() {
        let points = run(&[0.2]);
        let count = points.iter().find(|p| p.policy == "count=3").unwrap();
        let hybrid = points
            .iter()
            .find(|p| p.policy.starts_with("hybrid"))
            .unwrap();
        let punct = points.iter().find(|p| p.policy == "punctuation").unwrap();
        // count-based: stalls across intervals ⇒ mixed batches + delays
        assert!(count.mixed_frac > 0.2, "{count:?}");
        assert!(count.max_delay > TimeSpan::from_mins(5));
        // hybrid: window caps the delay
        assert!(hybrid.max_delay <= TimeSpan::from_mins(6) + TimeSpan::from_mins(5));
        assert!(hybrid.mixed_frac < count.mixed_frac);
        // punctuation: exact boundaries, no mixing
        assert_eq!(punct.mixed_frac, 0.0, "{punct:?}");
        assert!(punct.mean_delay <= hybrid.mean_delay);
    }

    /// Seeded regression for the origin-anchored window fix (seed 42 is
    /// baked into `trace`). Before the fix, the 6-minute window was
    /// anchored at the batch's *arrival* time; because every deposit
    /// lands 1–30 s after its 5-minute interval, the deadline always fell
    /// after the next interval's burst, the count clause always won, and
    /// hybrid degenerated to count-based (mixed_frac ≈ 0.84 at 20% skip).
    /// Anchored at the feed-time origin, the window fires at origin + 6m
    /// — one minute past the interval end, before the next burst — so a
    /// short batch closes on its own interval's boundary every time.
    #[test]
    fn hybrid_origin_anchored_window_isolates_intervals() {
        for p in run(&[0.1, 0.2, 0.3]) {
            if !p.policy.starts_with("hybrid") {
                continue;
            }
            assert_eq!(p.mixed_frac, 0.0, "{p:?}");
            // window-closed batches fire exactly 1m past the interval
            // end; count-closed ones fire earlier (≤ 30s deposit delay)
            assert!(p.max_delay <= TimeSpan::from_mins(1), "{p:?}");
            assert!(p.batches > 0, "{p:?}");
        }
    }
}

#[cfg(test)]
mod adaptive_tests {
    use super::*;

    #[test]
    fn adaptive_batcher_competitive_with_hybrid() {
        let points = run(&[0.2]);
        let adaptive = points
            .iter()
            .find(|p| p.policy.starts_with("adaptive"))
            .unwrap();
        let hybrid = points
            .iter()
            .find(|p| p.policy.starts_with("hybrid"))
            .unwrap();
        // the learned boundary should not mix intervals more than hybrid
        // does
        assert!(
            adaptive.mixed_frac <= hybrid.mixed_frac + 0.05,
            "adaptive {adaptive:?} vs hybrid {hybrid:?}"
        );
        // Recalibrated when the hybrid window became origin-anchored: the
        // hybrid now fires at origin + window (mean ≈ 42s at 20% skip),
        // which no arrival-only learner can beat — the adaptive batcher
        // never sees feed-times, only inter-arrival gaps. "Competitive"
        // therefore means bounded absolute delay (well under the 10m
        // safety cap and under one feed period), not beating the hybrid.
        assert!(
            adaptive.mean_delay <= TimeSpan::from_mins(3),
            "adaptive {adaptive:?} vs hybrid {hybrid:?}"
        );
        assert!(
            adaptive.max_delay <= TimeSpan::from_mins(5),
            "adaptive {adaptive:?} vs hybrid {hybrid:?}"
        );
    }
}
