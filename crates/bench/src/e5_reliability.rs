//! E5 — reliable delivery under fault injection (§4.2).
//!
//! Claim: "A data feed management system is expected to provide a
//! guarantee that every file received from a data source that matches
//! definition of a particular feed will be delivered to all the feed's
//! subscribers", despite subscriber crashes, server crashes/restarts,
//! new subscribers (who get the full history window) and feed
//! redefinitions.
//!
//! We run a randomized schedule of deposits, subscriber outages and
//! server restarts, then verify: zero lost files, zero duplicate
//! deliveries, full backfill after every recovery.

use crate::table::Table;
use bistro_base::{Clock, Rng, SimClock, TimePoint, TimeSpan};
use bistro_config::parse_config;
use bistro_core::Server;
use bistro_transport::{FaultPlan, FaultSpec, LinkSpec, RetryPolicy, SimNetwork, SubscriberClient};
use bistro_vfs::MemFs;
use std::sync::Arc;

/// The outcome of one fault-injected run.
#[derive(Clone, Debug)]
pub struct Outcome {
    /// RNG seed of the run.
    pub seed: u64,
    /// Files deposited (all matching the feed).
    pub files: usize,
    /// Server restarts injected.
    pub restarts: usize,
    /// Subscriber outage windows injected.
    pub outages: usize,
    /// Expected deliveries (files × subscribers, adjusted for the
    /// late-joining subscriber's start).
    pub expected_deliveries: u64,
    /// Actual delivery receipts.
    pub actual_deliveries: u64,
    /// Files still pending for any subscriber at the end (must be 0).
    pub lost: usize,
}

const CONFIG: &str = r#"
    feed F { pattern "data_%i_%Y%m%d%H%M.csv"; }
    subscriber alpha { endpoint "alpha"; subscribe F; }
    subscriber beta  { endpoint "beta";  subscribe F; }
"#;

/// Run one fault-injected schedule.
pub fn run_one(seed: u64, rounds: usize) -> Outcome {
    let mut rng = Rng::seed_from_u64(seed);
    let clock = SimClock::starting_at(TimePoint::from_secs(1_285_372_800));
    let store = MemFs::shared(clock.clone());
    // the durable configuration: restarts rebuild the server from this
    // (runtime-added subscribers are appended, as a real deployment would
    // persist them)
    let mut durable_config = parse_config(CONFIG).unwrap();
    let mut server =
        Some(Server::new("b", durable_config.clone(), clock.clone(), store.clone()).unwrap());

    let mut files = 0usize;
    let mut restarts = 0usize;
    let mut outages = 0usize;
    let mut down: Vec<&str> = Vec::new();
    let mut joined_late = false;

    for round in 0..rounds {
        clock.advance(TimeSpan::from_secs(60));
        let srv = server.as_mut().unwrap();

        // deposit a few files
        for _ in 0..rng.gen_range(1..4) {
            let c = clock.now().to_calendar();
            let name = format!(
                "data_{}_{:04}{:02}{:02}{:02}{:02}.csv",
                files, c.year, c.month, c.day, c.hour, c.minute
            );
            srv.deposit(&name, b"payload").unwrap();
            files += 1;
        }

        // random subscriber failures / recoveries
        for sub in ["alpha", "beta"] {
            if down.contains(&sub) {
                if rng.gen_bool(0.3) {
                    srv.set_subscriber_online(sub, true).unwrap();
                    down.retain(|s| *s != sub);
                }
            } else if rng.gen_bool(0.15) {
                srv.set_subscriber_online(sub, false).unwrap();
                down.push(sub);
                outages += 1;
            }
        }

        // occasional snapshot
        if rng.gen_bool(0.1) {
            srv.snapshot().unwrap();
        }

        // server crash + restart (drop without cleanup, reopen)
        if rng.gen_bool(0.08) {
            drop(server.take()); // crash: no shutdown, no snapshot
            restarts += 1;
            let mut fresh =
                Server::new("b", durable_config.clone(), clock.clone(), store.clone()).unwrap();
            // after restart everyone is presumed online; re-apply downs
            for sub in &down {
                fresh.set_subscriber_online(sub, false).unwrap();
            }
            fresh.deliver_pending_for("alpha").unwrap();
            fresh.deliver_pending_for("beta").unwrap();
            if joined_late {
                fresh.deliver_pending_for("gamma").unwrap();
            }
            server = Some(fresh);
        }

        // a third subscriber joins mid-run and must get full history
        if !joined_late && round == rounds / 2 {
            joined_late = true;
            let srv = server.as_mut().unwrap();
            let gamma = bistro_config::SubscriberDef {
                name: "gamma".to_string(),
                endpoint: "gamma".to_string(),
                subscriptions: vec!["F".to_string()],
                delivery: bistro_config::DeliveryMode::Push,
                deadline: TimeSpan::from_mins(5),
                batch: bistro_config::BatchSpec::per_file(),
                trigger: None,
                dest: None,
            };
            durable_config.subscribers.push(gamma.clone());
            srv.add_subscriber(gamma).unwrap();
        }
    }

    // final recovery: bring everyone up and drain
    let srv = server.as_mut().unwrap();
    for sub in ["alpha", "beta"] {
        srv.set_subscriber_online(sub, true).unwrap();
    }
    srv.deliver_pending_for("alpha").unwrap();
    srv.deliver_pending_for("beta").unwrap();
    srv.deliver_pending_for("gamma").unwrap();

    let feeds = vec!["F".to_string()];
    let lost = ["alpha", "beta", "gamma"]
        .iter()
        .map(|s| srv.receipts().pending_for(s, &feeds).len())
        .sum::<usize>();

    Outcome {
        seed,
        files,
        restarts,
        outages,
        expected_deliveries: files as u64 * 3,
        actual_deliveries: srv.receipts().delivery_count(),
        lost,
    }
}

/// Run several seeds.
pub fn run(seeds: &[u64], rounds: usize) -> Vec<Outcome> {
    seeds.iter().map(|&s| run_one(s, rounds)).collect()
}

/// The outcome of one run over a faulty link fabric (drops, duplicates,
/// ack/retry protocol, one mid-run server crash-restart).
#[derive(Clone, Debug)]
pub struct FaultyOutcome {
    /// RNG seed of the run (drives both the fault plan and retry jitter).
    pub seed: u64,
    /// Files deposited.
    pub files: usize,
    /// Messages the fabric silently dropped.
    pub dropped: u64,
    /// Extra message copies the fabric injected.
    pub duplicated: u64,
    /// Retransmissions the server's retry tracker sent.
    pub retries: u64,
    /// Redeliveries the subscribers deduplicated (each was still acked).
    pub dup_ignored: u64,
    /// Delivery receipts recorded (ack-confirmed only).
    pub receipts: u64,
    /// Files a subscriber received more or less than exactly once.
    pub not_exactly_once: usize,
    /// Files still pending for any subscriber at the end (must be 0).
    pub lost: usize,
}

/// Run one schedule over a lossy fabric: every delivery travels as an
/// acked attempt, receipts are written only on ack, retries use seeded
/// exponential backoff, and the server crashes and restarts mid-run
/// with unacked sends in flight.
pub fn run_one_faulty(seed: u64, rounds: usize) -> FaultyOutcome {
    let clock = SimClock::starting_at(TimePoint::from_secs(1_285_372_800));
    let store = MemFs::shared(clock.clone());
    let net = Arc::new(SimNetwork::new(LinkSpec {
        bandwidth: 1_000_000,
        latency: TimeSpan::from_millis(10),
    }));
    net.install_fault_plan(FaultPlan::uniform(seed, FaultSpec::lossy(0.2, 0.1)));
    let policy = RetryPolicy {
        base_timeout: TimeSpan::from_secs(10),
        backoff: 2,
        max_timeout: TimeSpan::from_mins(2),
        max_attempts: 12,
        jitter: 0.2,
    };

    let config = parse_config(CONFIG).unwrap();
    let mut server = Some(
        Server::new("b", config.clone(), clock.clone(), store.clone())
            .unwrap()
            .with_network(net.clone())
            .with_reliable_delivery(policy, seed),
    );
    let mut alpha = SubscriberClient::new("alpha", "b");
    let mut beta = SubscriberClient::new("beta", "b");

    let mut files = 0usize;
    let mut retries = 0u64;
    let mut crashed = false;
    let total_steps = rounds + 200; // drain budget after the last deposit
    for step in 0..total_steps {
        clock.advance(TimeSpan::from_secs(10));
        let now = clock.now();

        if step < rounds {
            let c = now.to_calendar();
            let name = format!(
                "data_{}_{:04}{:02}{:02}{:02}{:02}.csv",
                files, c.year, c.month, c.day, c.hour, c.minute
            );
            server.as_mut().unwrap().deposit(&name, b"payload").unwrap();
            files += 1;
        }

        // one crash-restart with sends still unacked: the reopened
        // receipts show them undelivered and backfill re-sends them
        if !crashed && step == rounds / 3 {
            crashed = true;
            retries += server.as_ref().unwrap().reliability_counters().1;
            drop(server.take());
            let mut fresh = Server::new("b", config.clone(), clock.clone(), store.clone())
                .unwrap()
                .with_network(net.clone())
                .with_reliable_delivery(policy, seed.wrapping_add(1));
            fresh.backfill_unacked().unwrap();
            server = Some(fresh);
        }

        alpha.poll_notifications(&net, now);
        beta.poll_notifications(&net, now);
        let srv = server.as_mut().unwrap();
        srv.poll_network().unwrap();
        srv.retry_tick().unwrap();

        if step >= rounds && srv.receipts().delivery_count() == files as u64 * 2 {
            break;
        }
    }

    let srv = server.as_ref().unwrap();
    retries += srv.reliability_counters().1;
    let exactly_once = |c: &SubscriberClient| -> usize {
        // delivered() is deduplicated by construction; a miscount here
        // means a file arrived zero times (lost) or the dedupe broke
        let mut ids: Vec<u64> = c.delivered().iter().map(|(f, _, _)| f.raw()).collect();
        ids.sort_unstable();
        ids.dedup();
        files.abs_diff(ids.len())
    };
    let feeds = vec!["F".to_string()];
    FaultyOutcome {
        seed,
        files,
        dropped: net.messages_dropped(),
        duplicated: net.messages_duplicated(),
        retries,
        dup_ignored: alpha.duplicates_ignored() + beta.duplicates_ignored(),
        receipts: srv.receipts().delivery_count(),
        not_exactly_once: exactly_once(&alpha) + exactly_once(&beta),
        lost: ["alpha", "beta"]
            .iter()
            .map(|s| srv.receipts().pending_for(s, &feeds).len())
            .sum::<usize>(),
    }
}

/// Run the faulty-link variant over several seeds.
pub fn run_faulty(seeds: &[u64], rounds: usize) -> Vec<FaultyOutcome> {
    seeds.iter().map(|&s| run_one_faulty(s, rounds)).collect()
}

/// Render the faulty-link experiment table.
pub fn table_faulty(outcomes: &[FaultyOutcome]) -> Table {
    let mut t = Table::new(
        "E5b: exactly-once over a lossy fabric (ack/retry + crash-restart)",
        &[
            "seed",
            "files",
            "dropped",
            "duplicated",
            "retries",
            "dups ignored",
            "receipts",
            "not exactly once",
            "lost",
        ],
    );
    for o in outcomes {
        t.row(vec![
            o.seed.to_string(),
            o.files.to_string(),
            o.dropped.to_string(),
            o.duplicated.to_string(),
            o.retries.to_string(),
            o.dup_ignored.to_string(),
            o.receipts.to_string(),
            o.not_exactly_once.to_string(),
            o.lost.to_string(),
        ]);
    }
    t
}

/// Render the experiment table.
pub fn table(outcomes: &[Outcome]) -> Table {
    let mut t = Table::new(
        "E5: reliability under fault injection (2 subscribers + 1 late joiner)",
        &[
            "seed",
            "files",
            "restarts",
            "outages",
            "expected deliveries",
            "actual deliveries",
            "lost",
        ],
    );
    for o in outcomes {
        t.row(vec![
            o.seed.to_string(),
            o.files.to_string(),
            o.restarts.to_string(),
            o.outages.to_string(),
            o.expected_deliveries.to_string(),
            o.actual_deliveries.to_string(),
            o.lost.to_string(),
        ]);
    }
    t
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn faulty_link_exactly_once() {
        for seed in [1, 42] {
            let o = run_one_faulty(seed, 30);
            assert_eq!(o.lost, 0, "seed {seed}: {o:?}");
            assert_eq!(o.not_exactly_once, 0, "seed {seed}: {o:?}");
            assert_eq!(o.receipts, o.files as u64 * 2, "seed {seed}: {o:?}");
            assert!(o.dropped > 0, "seed {seed} injected no drops: {o:?}");
            assert!(o.retries > 0, "seed {seed} never retried: {o:?}");
        }
    }

    #[test]
    fn no_losses_no_duplicates() {
        for seed in [1, 7, 42] {
            let o = run_one(seed, 60);
            assert_eq!(o.lost, 0, "seed {seed}: {o:?}");
            // delivery receipts are deduplicated, so exactly-once to every
            // subscriber including the late joiner (full history backfill)
            assert_eq!(
                o.actual_deliveries, o.expected_deliveries,
                "seed {seed}: {o:?}"
            );
            assert!(o.restarts + o.outages > 0, "seed {seed} injected no faults");
        }
    }
}
