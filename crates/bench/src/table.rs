//! Minimal markdown table builder for experiment output.

use std::fmt;

/// A simple column-aligned markdown table.
#[derive(Clone, Debug)]
pub struct Table {
    title: String,
    headers: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// A table with the given title and column headers.
    pub fn new(title: &str, headers: &[&str]) -> Table {
        Table {
            title: title.to_string(),
            headers: headers.iter().map(|s| s.to_string()).collect(),
            rows: Vec::new(),
        }
    }

    /// Append a row (cells are anything displayable).
    pub fn row(&mut self, cells: Vec<String>) -> &mut Self {
        assert_eq!(cells.len(), self.headers.len(), "row arity mismatch");
        self.rows.push(cells);
        self
    }

    /// The collected rows.
    pub fn rows(&self) -> &[Vec<String>] {
        &self.rows
    }
}

impl fmt::Display for Table {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let mut widths: Vec<usize> = self.headers.iter().map(|h| h.len()).collect();
        for row in &self.rows {
            for (i, cell) in row.iter().enumerate() {
                widths[i] = widths[i].max(cell.len());
            }
        }
        writeln!(f, "\n## {}\n", self.title)?;
        write!(f, "|")?;
        for (h, w) in self.headers.iter().zip(&widths) {
            write!(f, " {h:w$} |")?;
        }
        writeln!(f)?;
        write!(f, "|")?;
        for w in &widths {
            write!(f, "{}|", "-".repeat(w + 2))?;
        }
        writeln!(f)?;
        for row in &self.rows {
            write!(f, "|")?;
            for (cell, w) in row.iter().zip(&widths) {
                write!(f, " {cell:w$} |")?;
            }
            writeln!(f)?;
        }
        Ok(())
    }
}

/// Format a float with 2 decimals.
pub fn f2(v: f64) -> String {
    format!("{v:.2}")
}

/// Format a percentage with 1 decimal.
pub fn pct(v: f64) -> String {
    format!("{:.1}%", v * 100.0)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_aligned() {
        let mut t = Table::new("demo", &["a", "long_header"]);
        t.row(vec!["1".into(), "2".into()]);
        t.row(vec!["xxxxx".into(), "y".into()]);
        let s = t.to_string();
        assert!(s.contains("## demo"));
        assert!(s.contains("| a     | long_header |"));
        assert_eq!(t.rows().len(), 2);
    }

    #[test]
    #[should_panic(expected = "row arity mismatch")]
    fn arity_checked() {
        let mut t = Table::new("demo", &["a", "b"]);
        t.row(vec!["only-one".into()]);
    }
}
