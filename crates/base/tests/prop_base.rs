//! Property-based tests for bistro-base invariants, on the in-tree
//! `base::prop` harness.

use bistro_base::prop::{self, Runner};
use bistro_base::time::Calendar;
use bistro_base::{crc32, ByteReader, ByteWriter, TimePoint, TimeSpan};
use bistro_base::{prop_assert, prop_assert_eq, prop_assert_ne};

#[test]
fn varint_roundtrips() {
    Runner::new("varint_roundtrips").run(
        |rng| rng.next_u64(),
        |&v| {
            let mut w = ByteWriter::new();
            w.put_varint(v);
            let bytes = w.into_bytes();
            let mut r = ByteReader::new(&bytes);
            prop_assert_eq!(r.get_varint().unwrap(), v);
            prop_assert!(r.is_exhausted());
            Ok(())
        },
    );
}

#[test]
fn bytes_roundtrip() {
    Runner::new("bytes_roundtrip").run(
        |rng| prop::vec_of(rng, 0..=511, |r| r.gen_range(0u8..=255)),
        |data| {
            let mut w = ByteWriter::new();
            w.put_bytes(data);
            let bytes = w.into_bytes();
            let mut r = ByteReader::new(&bytes);
            prop_assert_eq!(r.get_bytes().unwrap(), &data[..]);
            Ok(())
        },
    );
}

#[test]
fn string_roundtrip() {
    Runner::new("string_roundtrip").run(
        |rng| prop::unicode_string(rng, 0..=64),
        |s| {
            let mut w = ByteWriter::new();
            w.put_str(s);
            let bytes = w.into_bytes();
            let mut r = ByteReader::new(&bytes);
            prop_assert_eq!(r.get_str().unwrap(), s.as_str());
            Ok(())
        },
    );
}

#[test]
fn crc_differs_on_mutation() {
    Runner::new("crc_differs_on_mutation").run(
        |rng| {
            (
                prop::vec_of(rng, 1..=255, |r| r.gen_range(0u8..=255)),
                rng.gen_range(0usize..4096),
                rng.gen_range(0u8..8),
            )
        },
        |(data, idx, bit)| {
            if data.is_empty() {
                return Ok(()); // shrunk out of domain
            }
            let orig = crc32(data);
            let mut mutated = data.clone();
            let i = idx % mutated.len();
            mutated[i] ^= 1 << bit;
            prop_assert_ne!(crc32(&mutated), orig);
            Ok(())
        },
    );
}

#[test]
fn calendar_roundtrips() {
    Runner::new("calendar_roundtrips").run(
        // up to year 9999
        |rng| rng.gen_range(0u64..=253_402_300_799),
        |&secs| {
            let tp = TimePoint::from_secs(secs);
            let c = Calendar::from_timepoint(tp);
            prop_assert!(c.is_valid());
            prop_assert_eq!(c.to_timepoint().unwrap(), tp);
            Ok(())
        },
    );
}

#[test]
fn truncate_is_idempotent_and_lower() {
    Runner::new("truncate_is_idempotent_and_lower").run(
        |rng| (rng.next_u64(), rng.gen_range(1u64..10_000_000_000)),
        |&(t, g)| {
            if g == 0 {
                return Ok(()); // shrunk out of domain
            }
            let tp = TimePoint::from_micros(t);
            let g = TimeSpan::from_micros(g);
            let once = tp.truncate_to(g);
            prop_assert!(once <= tp);
            prop_assert_eq!(once.truncate_to(g), once);
            prop_assert_eq!(once.as_micros() % g.as_micros(), 0);
            Ok(())
        },
    );
}
