//! Property-based tests for bistro-base invariants.

use bistro_base::{crc32, ByteReader, ByteWriter, TimePoint, TimeSpan};
use bistro_base::time::Calendar;
use proptest::prelude::*;

proptest! {
    #[test]
    fn varint_roundtrips(v in any::<u64>()) {
        let mut w = ByteWriter::new();
        w.put_varint(v);
        let bytes = w.into_bytes();
        let mut r = ByteReader::new(&bytes);
        prop_assert_eq!(r.get_varint().unwrap(), v);
        prop_assert!(r.is_exhausted());
    }

    #[test]
    fn bytes_roundtrip(data in proptest::collection::vec(any::<u8>(), 0..512)) {
        let mut w = ByteWriter::new();
        w.put_bytes(&data);
        let bytes = w.into_bytes();
        let mut r = ByteReader::new(&bytes);
        prop_assert_eq!(r.get_bytes().unwrap(), &data[..]);
    }

    #[test]
    fn string_roundtrip(s in "\\PC{0,64}") {
        let mut w = ByteWriter::new();
        w.put_str(&s);
        let bytes = w.into_bytes();
        let mut r = ByteReader::new(&bytes);
        prop_assert_eq!(r.get_str().unwrap(), s);
    }

    #[test]
    fn crc_differs_on_mutation(
        data in proptest::collection::vec(any::<u8>(), 1..256),
        idx in any::<prop::sample::Index>(),
        bit in 0u8..8,
    ) {
        let orig = crc32(&data);
        let mut mutated = data.clone();
        let i = idx.index(mutated.len());
        mutated[i] ^= 1 << bit;
        prop_assert_ne!(crc32(&mutated), orig);
    }

    #[test]
    fn calendar_roundtrips(secs in 0u64..=253_402_300_799) {
        // up to year 9999
        let tp = TimePoint::from_secs(secs);
        let c = Calendar::from_timepoint(tp);
        prop_assert!(c.is_valid());
        prop_assert_eq!(c.to_timepoint().unwrap(), tp);
    }

    #[test]
    fn truncate_is_idempotent_and_lower(
        t in any::<u64>(),
        g in 1u64..10_000_000_000,
    ) {
        let tp = TimePoint::from_micros(t);
        let g = TimeSpan::from_micros(g);
        let once = tp.truncate_to(g);
        prop_assert!(once <= tp);
        prop_assert_eq!(once.truncate_to(g), once);
        prop_assert_eq!(once.as_micros() % g.as_micros(), 0);
    }
}
