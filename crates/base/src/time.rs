//! Time points and spans.
//!
//! Bistro reasons about time in two distinct roles:
//!
//! * **arrival / delivery time** — when a file physically reached a landing
//!   directory or a subscriber; drives scheduling deadlines and tardiness
//!   accounting.
//! * **feed time** — the measurement-interval timestamp *embedded in the
//!   filename* (e.g. `MEMORY_poller1_20100925.gz`); drives normalization,
//!   batching and retention windows.
//!
//! Both are represented as a [`TimePoint`]: microseconds since the Unix
//! epoch. A dedicated type (rather than `std::time::SystemTime`) keeps
//! arithmetic total, ordering cheap, and serialization trivial — and lets
//! the whole system run against a simulated clock.

use std::fmt;
use std::ops::{Add, AddAssign, Sub, SubAssign};

/// A point in time, in microseconds since the Unix epoch.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct TimePoint(pub u64);

/// A span of time, in microseconds. Always non-negative.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct TimeSpan(pub u64);

impl TimePoint {
    /// The Unix epoch.
    pub const EPOCH: TimePoint = TimePoint(0);
    /// The largest representable time point (used as "never" sentinel).
    pub const MAX: TimePoint = TimePoint(u64::MAX);

    /// Construct from whole seconds since the epoch.
    pub const fn from_secs(secs: u64) -> Self {
        TimePoint(secs * 1_000_000)
    }

    /// Construct from whole milliseconds since the epoch.
    pub const fn from_millis(ms: u64) -> Self {
        TimePoint(ms * 1_000)
    }

    /// Construct from microseconds since the epoch.
    pub const fn from_micros(us: u64) -> Self {
        TimePoint(us)
    }

    /// Microseconds since the epoch.
    pub const fn as_micros(self) -> u64 {
        self.0
    }

    /// Whole milliseconds since the epoch (truncated).
    pub const fn as_millis(self) -> u64 {
        self.0 / 1_000
    }

    /// Whole seconds since the epoch (truncated).
    pub const fn as_secs(self) -> u64 {
        self.0 / 1_000_000
    }

    /// Saturating difference `self - earlier`, zero if `earlier` is later.
    pub fn since(self, earlier: TimePoint) -> TimeSpan {
        TimeSpan(self.0.saturating_sub(earlier.0))
    }

    /// Saturating addition of a span.
    pub fn saturating_add(self, span: TimeSpan) -> TimePoint {
        TimePoint(self.0.saturating_add(span.0))
    }

    /// Saturating subtraction of a span.
    pub fn saturating_sub(self, span: TimeSpan) -> TimePoint {
        TimePoint(self.0.saturating_sub(span.0))
    }

    /// Round down to a multiple of `granularity` (e.g. the start of the
    /// 5-minute bucket containing this time point). A zero granularity
    /// returns `self` unchanged.
    pub fn truncate_to(self, granularity: TimeSpan) -> TimePoint {
        if granularity.0 == 0 {
            self
        } else {
            TimePoint(self.0 - self.0 % granularity.0)
        }
    }

    /// Decompose into a calendar date-time (UTC, proleptic Gregorian).
    ///
    /// Used when rendering `%Y%m%d…` fields during filename normalization.
    pub fn to_calendar(self) -> Calendar {
        Calendar::from_timepoint(self)
    }
}

impl TimeSpan {
    /// Zero-length span.
    pub const ZERO: TimeSpan = TimeSpan(0);
    /// The largest representable span.
    pub const MAX: TimeSpan = TimeSpan(u64::MAX);

    /// Construct from whole seconds.
    pub const fn from_secs(secs: u64) -> Self {
        TimeSpan(secs * 1_000_000)
    }

    /// Construct from whole minutes.
    pub const fn from_mins(mins: u64) -> Self {
        TimeSpan(mins * 60 * 1_000_000)
    }

    /// Construct from whole hours.
    pub const fn from_hours(hours: u64) -> Self {
        TimeSpan(hours * 3_600 * 1_000_000)
    }

    /// Construct from whole days.
    pub const fn from_days(days: u64) -> Self {
        TimeSpan(days * 86_400 * 1_000_000)
    }

    /// Construct from whole milliseconds.
    pub const fn from_millis(ms: u64) -> Self {
        TimeSpan(ms * 1_000)
    }

    /// Construct from microseconds.
    pub const fn from_micros(us: u64) -> Self {
        TimeSpan(us)
    }

    /// Microseconds.
    pub const fn as_micros(self) -> u64 {
        self.0
    }

    /// Whole milliseconds (truncated).
    pub const fn as_millis(self) -> u64 {
        self.0 / 1_000
    }

    /// Whole seconds (truncated).
    pub const fn as_secs(self) -> u64 {
        self.0 / 1_000_000
    }

    /// Fractional seconds as `f64` (for reporting only).
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1e6
    }

    /// Checked multiplication by an integer factor.
    pub fn checked_mul(self, factor: u64) -> Option<TimeSpan> {
        self.0.checked_mul(factor).map(TimeSpan)
    }

    /// Saturating multiplication by an integer factor.
    pub fn saturating_mul(self, factor: u64) -> TimeSpan {
        TimeSpan(self.0.saturating_mul(factor))
    }
}

impl Add<TimeSpan> for TimePoint {
    type Output = TimePoint;
    fn add(self, rhs: TimeSpan) -> TimePoint {
        TimePoint(self.0 + rhs.0)
    }
}

impl AddAssign<TimeSpan> for TimePoint {
    fn add_assign(&mut self, rhs: TimeSpan) {
        self.0 += rhs.0;
    }
}

impl Sub<TimeSpan> for TimePoint {
    type Output = TimePoint;
    fn sub(self, rhs: TimeSpan) -> TimePoint {
        TimePoint(self.0 - rhs.0)
    }
}

impl Sub<TimePoint> for TimePoint {
    type Output = TimeSpan;
    fn sub(self, rhs: TimePoint) -> TimeSpan {
        TimeSpan(self.0 - rhs.0)
    }
}

impl Add for TimeSpan {
    type Output = TimeSpan;
    fn add(self, rhs: TimeSpan) -> TimeSpan {
        TimeSpan(self.0 + rhs.0)
    }
}

impl AddAssign for TimeSpan {
    fn add_assign(&mut self, rhs: TimeSpan) {
        self.0 += rhs.0;
    }
}

impl Sub for TimeSpan {
    type Output = TimeSpan;
    fn sub(self, rhs: TimeSpan) -> TimeSpan {
        TimeSpan(self.0 - rhs.0)
    }
}

impl SubAssign for TimeSpan {
    fn sub_assign(&mut self, rhs: TimeSpan) {
        self.0 -= rhs.0;
    }
}

impl fmt::Debug for TimePoint {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if *self == TimePoint::MAX {
            return write!(f, "t=never");
        }
        write!(f, "t={}us", self.0)
    }
}

impl fmt::Display for TimePoint {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let c = self.to_calendar();
        write!(
            f,
            "{:04}-{:02}-{:02} {:02}:{:02}:{:02}",
            c.year, c.month, c.day, c.hour, c.minute, c.second
        )
    }
}

impl fmt::Debug for TimeSpan {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Display::fmt(self, f)
    }
}

impl fmt::Display for TimeSpan {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let us = self.0;
        if us == 0 {
            write!(f, "0s")
        } else if us.is_multiple_of(1_000_000) {
            let s = us / 1_000_000;
            if s.is_multiple_of(86_400) {
                write!(f, "{}d", s / 86_400)
            } else if s.is_multiple_of(3_600) {
                write!(f, "{}h", s / 3_600)
            } else if s.is_multiple_of(60) {
                write!(f, "{}m", s / 60)
            } else {
                write!(f, "{}s", s)
            }
        } else if us >= 3_600_000_000 {
            write!(f, "{:.1}h", us as f64 / 3.6e9)
        } else if us >= 60_000_000 {
            write!(f, "{:.1}m", us as f64 / 6e7)
        } else if us >= 1_000_000 {
            write!(f, "{:.1}s", us as f64 / 1e6)
        } else if us.is_multiple_of(1_000) {
            write!(f, "{}ms", us / 1_000)
        } else if us >= 1_000 {
            write!(f, "{:.1}ms", us as f64 / 1e3)
        } else {
            write!(f, "{}us", us)
        }
    }
}

/// A calendar date-time in UTC, used to render and parse the timestamp
/// fields (`%Y %m %d %H %M %S`) embedded in feed filenames.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Calendar {
    pub year: u32,
    pub month: u32,
    pub day: u32,
    pub hour: u32,
    pub minute: u32,
    pub second: u32,
}

impl Calendar {
    /// Days in the given month of the given year.
    pub fn days_in_month(year: u32, month: u32) -> u32 {
        match month {
            1 | 3 | 5 | 7 | 8 | 10 | 12 => 31,
            4 | 6 | 9 | 11 => 30,
            2 => {
                if Self::is_leap_year(year) {
                    29
                } else {
                    28
                }
            }
            _ => 0,
        }
    }

    /// Gregorian leap-year rule.
    pub fn is_leap_year(year: u32) -> bool {
        (year.is_multiple_of(4) && !year.is_multiple_of(100)) || year.is_multiple_of(400)
    }

    /// True if this is a representable UTC date-time (year 1970..=9999).
    pub fn is_valid(&self) -> bool {
        (1970..=9999).contains(&self.year)
            && (1..=12).contains(&self.month)
            && self.day >= 1
            && self.day <= Self::days_in_month(self.year, self.month)
            && self.hour < 24
            && self.minute < 60
            && self.second < 60
    }

    /// Convert to a [`TimePoint`]. Returns `None` if the calendar fields
    /// are out of range.
    pub fn to_timepoint(&self) -> Option<TimePoint> {
        if !self.is_valid() {
            return None;
        }
        let mut days: u64 = 0;
        for y in 1970..self.year {
            days += if Self::is_leap_year(y) { 366 } else { 365 };
        }
        for m in 1..self.month {
            days += Self::days_in_month(self.year, m) as u64;
        }
        days += (self.day - 1) as u64;
        let secs =
            days * 86_400 + self.hour as u64 * 3_600 + self.minute as u64 * 60 + self.second as u64;
        Some(TimePoint::from_secs(secs))
    }

    /// Decompose a [`TimePoint`] into calendar fields (UTC).
    pub fn from_timepoint(tp: TimePoint) -> Calendar {
        let mut secs = tp.as_secs();
        let second = (secs % 60) as u32;
        secs /= 60;
        let minute = (secs % 60) as u32;
        secs /= 60;
        let hour = (secs % 24) as u32;
        let mut days = secs / 24;

        let mut year: u32 = 1970;
        loop {
            let ydays = if Self::is_leap_year(year) { 366 } else { 365 } as u64;
            if days < ydays {
                break;
            }
            days -= ydays;
            year += 1;
        }
        let mut month: u32 = 1;
        loop {
            let mdays = Self::days_in_month(year, month) as u64;
            if days < mdays {
                break;
            }
            days -= mdays;
            month += 1;
        }
        Calendar {
            year,
            month,
            day: days as u32 + 1,
            hour,
            minute,
            second,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn timepoint_arithmetic() {
        let t = TimePoint::from_secs(100);
        assert_eq!(t + TimeSpan::from_secs(20), TimePoint::from_secs(120));
        assert_eq!(t - TimeSpan::from_secs(20), TimePoint::from_secs(80));
        assert_eq!(
            TimePoint::from_secs(120) - TimePoint::from_secs(100),
            TimeSpan::from_secs(20)
        );
        assert_eq!(t.since(TimePoint::from_secs(200)), TimeSpan::ZERO);
    }

    #[test]
    fn truncate_to_bucket() {
        let t = TimePoint::from_secs(5 * 60 + 37);
        assert_eq!(
            t.truncate_to(TimeSpan::from_mins(5)),
            TimePoint::from_secs(5 * 60)
        );
        assert_eq!(t.truncate_to(TimeSpan::ZERO), t);
    }

    #[test]
    fn span_constructors_consistent() {
        assert_eq!(TimeSpan::from_days(1), TimeSpan::from_hours(24));
        assert_eq!(TimeSpan::from_hours(1), TimeSpan::from_mins(60));
        assert_eq!(TimeSpan::from_mins(1), TimeSpan::from_secs(60));
        assert_eq!(TimeSpan::from_secs(1), TimeSpan::from_millis(1000));
        assert_eq!(TimeSpan::from_millis(1), TimeSpan::from_micros(1000));
    }

    #[test]
    fn span_display() {
        assert_eq!(TimeSpan::from_days(2).to_string(), "2d");
        assert_eq!(TimeSpan::from_hours(3).to_string(), "3h");
        assert_eq!(TimeSpan::from_mins(5).to_string(), "5m");
        assert_eq!(TimeSpan::from_secs(7).to_string(), "7s");
        assert_eq!(TimeSpan::from_millis(13).to_string(), "13ms");
        assert_eq!(TimeSpan::from_micros(17).to_string(), "17us");
        assert_eq!(TimeSpan::ZERO.to_string(), "0s");
    }

    #[test]
    fn calendar_epoch() {
        let c = Calendar::from_timepoint(TimePoint::EPOCH);
        assert_eq!(
            c,
            Calendar {
                year: 1970,
                month: 1,
                day: 1,
                hour: 0,
                minute: 0,
                second: 0
            }
        );
        assert_eq!(c.to_timepoint(), Some(TimePoint::EPOCH));
    }

    #[test]
    fn calendar_known_dates() {
        // 2010-12-30 01:00:00 UTC == 1293670800 (from the paper's poller
        // filename example Poller1_router_a_2010_12_30_01.csv.gz).
        let c = Calendar {
            year: 2010,
            month: 12,
            day: 30,
            hour: 1,
            minute: 0,
            second: 0,
        };
        let tp = c.to_timepoint().unwrap();
        assert_eq!(tp.as_secs(), 1_293_670_800);
        assert_eq!(Calendar::from_timepoint(tp), c);
    }

    #[test]
    fn calendar_leap_years() {
        assert!(Calendar::is_leap_year(2000));
        assert!(!Calendar::is_leap_year(1900));
        assert!(Calendar::is_leap_year(2012));
        assert!(!Calendar::is_leap_year(2011));
        assert_eq!(Calendar::days_in_month(2012, 2), 29);
        assert_eq!(Calendar::days_in_month(2011, 2), 28);
    }

    #[test]
    fn calendar_rejects_invalid() {
        let bad = Calendar {
            year: 2010,
            month: 2,
            day: 30,
            hour: 0,
            minute: 0,
            second: 0,
        };
        assert!(!bad.is_valid());
        assert_eq!(bad.to_timepoint(), None);
        let bad_hour = Calendar {
            year: 2010,
            month: 2,
            day: 28,
            hour: 24,
            minute: 0,
            second: 0,
        };
        assert_eq!(bad_hour.to_timepoint(), None);
    }

    #[test]
    fn calendar_roundtrip_sweep() {
        // Sweep a range of times at odd increments across month and year
        // boundaries and verify roundtripping.
        let mut tp = TimePoint::from_secs(1_200_000_000);
        for _ in 0..2_000 {
            let c = Calendar::from_timepoint(tp);
            assert!(c.is_valid());
            assert_eq!(
                c.to_timepoint().unwrap().as_secs(),
                tp.as_secs(),
                "roundtrip failed at {}",
                tp.as_secs()
            );
            tp += TimeSpan::from_secs(40_013);
        }
    }
}
