//! Checksums: CRC-32 (IEEE 802.3) and FNV-1a.
//!
//! CRC-32 frames every write-ahead-log record in `bistro-receipts` and
//! every block of the `bistro-compress` container format, so torn or
//! corrupted tails are detected during recovery. FNV-1a is used for cheap
//! non-cryptographic hashing (dedup keys, hash-partitioning of files onto
//! delivery workers).

/// Streaming CRC-32 (IEEE polynomial, reflected, init/final xor 0xFFFFFFFF —
/// the same parameters as zlib's `crc32`).
#[derive(Clone, Debug)]
pub struct Crc32 {
    state: u32,
}

/// 256-entry lookup table for the reflected IEEE polynomial 0xEDB88320.
const fn build_table() -> [u32; 256] {
    let mut table = [0u32; 256];
    let mut i = 0;
    while i < 256 {
        let mut crc = i as u32;
        let mut j = 0;
        while j < 8 {
            crc = if crc & 1 != 0 {
                (crc >> 1) ^ 0xEDB8_8320
            } else {
                crc >> 1
            };
            j += 1;
        }
        table[i] = crc;
        i += 1;
    }
    table
}

static CRC_TABLE: [u32; 256] = build_table();

impl Crc32 {
    /// Fresh hasher.
    pub fn new() -> Self {
        Crc32 { state: 0xFFFF_FFFF }
    }

    /// Feed bytes.
    pub fn update(&mut self, data: &[u8]) {
        let mut s = self.state;
        for &b in data {
            s = (s >> 8) ^ CRC_TABLE[((s ^ b as u32) & 0xFF) as usize];
        }
        self.state = s;
    }

    /// Final checksum value.
    pub fn finish(&self) -> u32 {
        self.state ^ 0xFFFF_FFFF
    }
}

impl Default for Crc32 {
    fn default() -> Self {
        Self::new()
    }
}

/// One-shot CRC-32 of a byte slice.
pub fn crc32(data: &[u8]) -> u32 {
    let mut h = Crc32::new();
    h.update(data);
    h.finish()
}

/// One-shot FNV-1a 64-bit hash of a byte slice.
pub fn fnv1a64(data: &[u8]) -> u64 {
    let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in data {
        hash ^= b as u64;
        hash = hash.wrapping_mul(0x100_0000_01b3);
    }
    hash
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn crc32_known_vectors() {
        // Standard test vectors for CRC-32/ISO-HDLC.
        assert_eq!(crc32(b""), 0x0000_0000);
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(
            crc32(b"The quick brown fox jumps over the lazy dog"),
            0x414F_A339
        );
    }

    #[test]
    fn crc32_streaming_matches_oneshot() {
        let data = b"hello, bistro feed manager";
        let mut h = Crc32::new();
        h.update(&data[..5]);
        h.update(&data[5..]);
        assert_eq!(h.finish(), crc32(data));
    }

    #[test]
    fn crc32_detects_single_bit_flip() {
        let mut data = b"MEMORY_poller1_20100925.gz".to_vec();
        let orig = crc32(&data);
        data[3] ^= 0x01;
        assert_ne!(crc32(&data), orig);
    }

    #[test]
    fn fnv_known_vectors() {
        // Published FNV-1a 64 test vectors.
        assert_eq!(fnv1a64(b""), 0xcbf2_9ce4_8422_2325);
        assert_eq!(fnv1a64(b"a"), 0xaf63_dc4c_8601_ec8c);
        assert_eq!(fnv1a64(b"foobar"), 0x85944171f73967e8);
    }

    #[test]
    fn fnv_distributes() {
        // Different poller filenames should hash differently.
        let a = fnv1a64(b"CPU_POLL1_201009250502.txt");
        let b = fnv1a64(b"CPU_POLL2_201009250502.txt");
        assert_ne!(a, b);
    }
}
