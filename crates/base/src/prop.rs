//! A deterministic, dependency-free property-testing mini-harness.
//!
//! Replaces the external `proptest` crate for this workspace's needs:
//! seeded case generation on top of [`crate::rng::Rng`], a bounded
//! iteration budget, greedy shrink-by-halving for integers / vecs /
//! strings / tuples, and failure-seed reporting so any counterexample
//! can be replayed exactly.
//!
//! A property is a closure from a generated value to
//! `Result<(), String>`; the [`prop_assert!`]-family macros produce the
//! `Err` side. Generators are plain closures `Fn(&mut Rng) -> T` built
//! from the helpers in this module.
//!
//! ```
//! use bistro_base::prop::{self, Runner};
//! use bistro_base::prop_assert;
//!
//! Runner::new("reverse_involutive").run(
//!     |rng| prop::vec_of(rng, 0..=16, |r| r.gen_range(0u32..100)),
//!     |v| {
//!         let mut w = v.clone();
//!         w.reverse();
//!         w.reverse();
//!         prop_assert!(w == *v, "double reverse changed {:?}", v);
//!         Ok(())
//!     },
//! );
//! ```
//!
//! Replay: a failure panic prints the case seed; rerun with
//! `BISTRO_PROP_SEED=<seed>` to execute exactly that case.
//! `BISTRO_PROP_CASES=<n>` overrides every runner's iteration budget.
//!
//! Shrinking operates on *values*, not on generator internals, so a
//! shrunk candidate can fall outside the generator's domain; properties
//! should therefore be total over structurally smaller inputs (they
//! already are, in this workspace).

use crate::rng::{splitmix64, Rng};
use std::fmt::Debug;
use std::panic::{catch_unwind, AssertUnwindSafe};

/// What a property returns: `Ok(())` or a failure description.
pub type PropResult = Result<(), String>;

/// Fixed default base seed — CI runs are deterministic.
const DEFAULT_SEED: u64 = 0xB157_0CA5_E5EE_D001;
/// Default per-property iteration budget.
const DEFAULT_CASES: usize = 128;
/// Cap on property evaluations spent shrinking one counterexample.
const SHRINK_BUDGET: usize = 16_384;

/// Drives one property: holds the name, iteration budget and base seed.
pub struct Runner {
    name: String,
    cases: usize,
    base_seed: u64,
    forced_seed: Option<u64>,
}

impl Runner {
    /// A runner with the default budget; honors `BISTRO_PROP_SEED`
    /// (replay one case) and `BISTRO_PROP_CASES` (budget override).
    pub fn new(name: &str) -> Runner {
        let forced_seed = std::env::var("BISTRO_PROP_SEED")
            .ok()
            .and_then(|s| parse_seed(&s));
        let cases = std::env::var("BISTRO_PROP_CASES")
            .ok()
            .and_then(|s| s.parse().ok())
            .unwrap_or(DEFAULT_CASES);
        Runner {
            name: name.to_string(),
            cases,
            base_seed: DEFAULT_SEED,
            forced_seed,
        }
    }

    /// Override the iteration budget (`BISTRO_PROP_CASES` still wins).
    pub fn cases(mut self, n: usize) -> Runner {
        if std::env::var("BISTRO_PROP_CASES").is_err() {
            self.cases = n;
        }
        self
    }

    /// Generate and check `cases` inputs; on failure, shrink to a
    /// minimal counterexample and panic with the replay seed.
    pub fn run<T, G, P>(self, gen: G, prop: P)
    where
        T: Clone + Debug + Shrink,
        G: Fn(&mut Rng) -> T,
        P: Fn(&T) -> PropResult,
    {
        let mut stream = self.base_seed;
        for case in 0..self.cases {
            let case_seed = match self.forced_seed {
                Some(s) => s,
                None => splitmix64(&mut stream),
            };
            let value = gen(&mut Rng::seed_from_u64(case_seed));
            if let Some(err) = eval(&prop, &value) {
                let (minimal, steps) = shrink_to_minimal(&prop, value.clone());
                let final_err = eval(&prop, &minimal).unwrap_or(err.clone());
                panic!(
                    "property '{}' failed (case {}/{})\n  \
                     replay: BISTRO_PROP_SEED={:#x}\n  \
                     original: {:?}\n  \
                     minimal ({} shrink steps): {:?}\n  \
                     error: {}",
                    self.name, case, self.cases, case_seed, value, steps, minimal, final_err
                );
            }
            if self.forced_seed.is_some() {
                return; // replay mode: exactly one case
            }
        }
    }
}

fn parse_seed(s: &str) -> Option<u64> {
    let s = s.trim();
    if let Some(hex) = s.strip_prefix("0x").or_else(|| s.strip_prefix("0X")) {
        u64::from_str_radix(hex, 16).ok()
    } else {
        s.parse().ok()
    }
}

/// Run the property once, treating panics as failures. Returns the
/// failure message, or `None` on success.
fn eval<T, P: Fn(&T) -> PropResult>(prop: &P, value: &T) -> Option<String> {
    match catch_unwind(AssertUnwindSafe(|| prop(value))) {
        Ok(Ok(())) => None,
        Ok(Err(msg)) => Some(msg),
        Err(payload) => Some(panic_message(&payload)),
    }
}

fn panic_message(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        format!("panic: {s}")
    } else if let Some(s) = payload.downcast_ref::<String>() {
        format!("panic: {s}")
    } else {
        "panic: <non-string payload>".to_string()
    }
}

/// Greedy shrink: repeatedly move to the first shrink candidate that
/// still fails, until none does or the budget runs out.
fn shrink_to_minimal<T, P>(prop: &P, mut current: T) -> (T, usize)
where
    T: Clone + Debug + Shrink,
    P: Fn(&T) -> PropResult,
{
    let mut budget = SHRINK_BUDGET;
    let mut steps = 0usize;
    'outer: loop {
        for candidate in current.shrink() {
            if budget == 0 {
                break 'outer;
            }
            budget -= 1;
            if eval(prop, &candidate).is_some() {
                current = candidate;
                steps += 1;
                continue 'outer;
            }
        }
        break;
    }
    (current, steps)
}

/// Values that can propose structurally smaller versions of
/// themselves. The default is "cannot shrink" so test-local types can
/// opt in with an empty `impl`.
pub trait Shrink: Sized {
    /// Candidate replacements, roughly smallest-first.
    fn shrink(&self) -> Vec<Self> {
        Vec::new()
    }
}

// Binary-descent ladder toward zero: 0, v/2, then values approaching v
// from below by halving deltas (3v/4, 7v/8, …, v-1). Greedy use of this
// list converges in O(log² v) property evaluations, like proptest.
macro_rules! impl_shrink_int {
    ($($t:ty),*) => {$(
        impl Shrink for $t {
            fn shrink(&self) -> Vec<$t> {
                let v = *self;
                if v == 0 {
                    return Vec::new();
                }
                let mut out = vec![0, v / 2];
                let mut delta = v / 4;
                while delta != 0 {
                    out.push(v - delta);
                    delta /= 2;
                }
                out.push(if v > 0 { v - 1 } else { v + 1 });
                out.dedup();
                out.retain(|&c| c != v);
                out
            }
        }
    )*};
}
impl_shrink_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Shrink for bool {
    fn shrink(&self) -> Vec<bool> {
        if *self {
            vec![false]
        } else {
            Vec::new()
        }
    }
}

impl Shrink for char {
    fn shrink(&self) -> Vec<char> {
        if *self == 'a' {
            Vec::new()
        } else {
            vec!['a']
        }
    }
}

impl Shrink for String {
    fn shrink(&self) -> Vec<String> {
        let mut out = Vec::new();
        let n = self.chars().count();
        if n == 0 {
            return out;
        }
        out.push(String::new());
        out.push(self.chars().take(n / 2).collect());
        out.push(self.chars().skip(n / 2).collect());
        out.push(self.chars().take(n - 1).collect());
        out.push(self.chars().skip(1).collect());
        // simplify the first non-'a' character
        if let Some((i, _)) = self.char_indices().find(|&(_, c)| c != 'a') {
            let mut s: Vec<char> = self.chars().collect();
            let pos = self[..i].chars().count();
            s[pos] = 'a';
            out.push(s.into_iter().collect());
        }
        out.retain(|c| c != self);
        out
    }
}

impl<T: Clone + Shrink> Shrink for Vec<T> {
    fn shrink(&self) -> Vec<Vec<T>> {
        let mut out = Vec::new();
        let n = self.len();
        if n == 0 {
            return out;
        }
        // structural candidates, all strictly shorter than self
        out.push(Vec::new());
        if n / 2 > 0 {
            out.push(self[..n / 2].to_vec());
            out.push(self[n / 2..].to_vec());
        }
        out.push(self[..n - 1].to_vec());
        out.push(self[1..].to_vec());
        // shrink individual elements (first few only, to bound fan-out)
        for i in 0..n.min(8) {
            for cand in self[i].shrink().into_iter().take(6) {
                let mut v = self.clone();
                v[i] = cand;
                out.push(v);
            }
        }
        out
    }
}

impl<T: Clone + Shrink> Shrink for Option<T> {
    fn shrink(&self) -> Vec<Option<T>> {
        match self {
            None => Vec::new(),
            Some(v) => {
                let mut out = vec![None];
                out.extend(v.shrink().into_iter().map(Some));
                out
            }
        }
    }
}

macro_rules! impl_shrink_tuple {
    ($($name:ident : $idx:tt),+) => {
        impl<$($name: Clone + Shrink),+> Shrink for ($($name,)+) {
            fn shrink(&self) -> Vec<Self> {
                let mut out = Vec::new();
                $(
                    for cand in self.$idx.shrink() {
                        let mut t = self.clone();
                        t.$idx = cand;
                        out.push(t);
                    }
                )+
                out
            }
        }
    };
}
impl_shrink_tuple!(A: 0);
impl_shrink_tuple!(A: 0, B: 1);
impl_shrink_tuple!(A: 0, B: 1, C: 2);
impl_shrink_tuple!(A: 0, B: 1, C: 2, D: 3);
impl_shrink_tuple!(A: 0, B: 1, C: 2, D: 3, E: 4);
impl_shrink_tuple!(A: 0, B: 1, C: 2, D: 3, E: 4, F: 5);

// ---------------------------------------------------------------------
// Generator helpers
// ---------------------------------------------------------------------

/// Expand a compact character-class spec into its members: `"A-Za-z0-9_."`
/// means the ranges `A-Z`, `a-z`, `0-9` plus the literals `_` and `.`.
/// A `-` at the start or end is a literal dash.
pub fn charset(spec: &str) -> Vec<char> {
    let chars: Vec<char> = spec.chars().collect();
    let mut out = Vec::new();
    let mut i = 0;
    while i < chars.len() {
        if i + 2 < chars.len() && chars[i + 1] == '-' {
            let (lo, hi) = (chars[i], chars[i + 2]);
            assert!(lo <= hi, "bad charset range {lo}-{hi}");
            for c in lo..=hi {
                out.push(c);
            }
            i += 3;
        } else {
            out.push(chars[i]);
            i += 1;
        }
    }
    out
}

/// Random string whose characters come from [`charset`]`(spec)` and
/// whose length is uniform in `len`.
pub fn string(rng: &mut Rng, spec: &str, len: core::ops::RangeInclusive<usize>) -> String {
    let pool = charset(spec);
    assert!(!pool.is_empty(), "empty charset {spec:?}");
    let n = rng.gen_range(len);
    (0..n).map(|_| *rng.choose(&pool)).collect()
}

/// Random string over printable non-control characters, ASCII-biased
/// but including multi-byte code points (the stand-in for `\PC`).
pub fn unicode_string(rng: &mut Rng, len: core::ops::RangeInclusive<usize>) -> String {
    const WIDE: &[char] = &[
        'é', 'ß', 'λ', 'Ж', '中', '日', '₿', '→', '🦀', '𝕊', 'ñ', '字',
    ];
    let n = rng.gen_range(len);
    (0..n)
        .map(|_| {
            if rng.gen_bool(0.15) {
                *rng.choose(WIDE)
            } else {
                rng.gen_range(0x20u32..0x7F) as u8 as char
            }
        })
        .collect()
}

/// Random `Vec` with length uniform in `len`, elements from `f`.
pub fn vec_of<T>(
    rng: &mut Rng,
    len: core::ops::RangeInclusive<usize>,
    mut f: impl FnMut(&mut Rng) -> T,
) -> Vec<T> {
    let n = rng.gen_range(len);
    (0..n).map(|_| f(rng)).collect()
}

/// `Some(f(rng))` with probability 1/2, else `None`.
pub fn option_of<T>(rng: &mut Rng, mut f: impl FnMut(&mut Rng) -> T) -> Option<T> {
    if rng.gen_bool(0.5) {
        Some(f(rng))
    } else {
        None
    }
}

/// Uniform pick from a slice of options (cloned).
pub fn select<T: Clone>(rng: &mut Rng, options: &[T]) -> T {
    rng.choose(options).clone()
}

/// Assert a condition inside a property; formats like `assert!` but
/// returns `Err` instead of panicking (so shrinking sees the failure).
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        if !$cond {
            return Err(format!("assertion failed: {}", stringify!($cond)));
        }
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !$cond {
            return Err(format!($($fmt)*));
        }
    };
}

/// `prop_assert!` for equality, printing both sides on failure.
#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr) => {{
        let (a, b) = (&$a, &$b);
        if !(a == b) {
            return Err(format!(
                "assertion failed: {} == {}\n  left: {:?}\n right: {:?}",
                stringify!($a), stringify!($b), a, b
            ));
        }
    }};
    ($a:expr, $b:expr, $($fmt:tt)*) => {{
        let (a, b) = (&$a, &$b);
        if !(a == b) {
            return Err(format!(
                "{}\n  left: {:?}\n right: {:?}",
                format!($($fmt)*), a, b
            ));
        }
    }};
}

/// `prop_assert!` for inequality, printing the collided value.
#[macro_export]
macro_rules! prop_assert_ne {
    ($a:expr, $b:expr) => {{
        let (a, b) = (&$a, &$b);
        if a == b {
            return Err(format!(
                "assertion failed: {} != {}\n  both: {:?}",
                stringify!($a), stringify!($b), a
            ));
        }
    }};
    ($a:expr, $b:expr, $($fmt:tt)*) => {{
        let (a, b) = (&$a, &$b);
        if a == b {
            return Err(format!("{}\n  both: {:?}", format!($($fmt)*), a));
        }
    }};
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn passing_property_completes() {
        Runner::new("addition_commutes").cases(64).run(
            |rng| (rng.gen_range(0u32..1000), rng.gen_range(0u32..1000)),
            |&(a, b)| {
                crate::prop_assert_eq!(a + b, b + a);
                Ok(())
            },
        );
    }

    #[test]
    fn charset_expands_ranges_and_literals() {
        let cs = charset("A-Ca-c0-9_.");
        assert_eq!(cs.iter().collect::<String>(), "ABCabc0123456789_.");
        assert_eq!(charset("-x-z").iter().collect::<String>(), "-xyz");
    }

    #[test]
    fn generation_is_deterministic_per_seed() {
        let mk = |seed| {
            let mut rng = Rng::seed_from_u64(seed);
            (
                string(&mut rng, "A-Za-z", 1..=20),
                vec_of(&mut rng, 0..=10, |r| r.gen_range(0u64..100)),
            )
        };
        assert_eq!(mk(7), mk(7));
        assert_ne!(mk(7), mk(8));
    }

    #[test]
    fn shrink_finds_minimal_planted_counterexample() {
        // Plant: "all elements < 10" fails for any vec containing >= 10.
        // The minimal counterexample is the single-element vec [10].
        let prop = |v: &Vec<u32>| {
            if v.iter().any(|&x| x >= 10) {
                Err("element out of range".to_string())
            } else {
                Ok(())
            }
        };
        // find some failing input first
        let mut rng = Rng::seed_from_u64(99);
        let noisy: Vec<u32> = loop {
            let v = vec_of(&mut rng, 0..=24, |r| r.gen_range(0u32..50));
            if prop(&v).is_err() {
                break v;
            }
        };
        let (minimal, steps) = shrink_to_minimal(&prop, noisy);
        assert_eq!(minimal, vec![10], "after {steps} steps");
    }

    #[test]
    fn shrink_reaches_integer_boundary() {
        let prop = |&v: &u64| {
            if v >= 100 {
                Err("too big".to_string())
            } else {
                Ok(())
            }
        };
        let (minimal, _) = shrink_to_minimal(&prop, 1_000_000u64);
        assert_eq!(minimal, 100);
    }

    #[test]
    #[should_panic(expected = "BISTRO_PROP_SEED")]
    fn failure_reports_replay_seed() {
        Runner::new("always_fails").cases(4).run(
            |rng| rng.gen_range(0u32..10),
            |_| Err("planted".to_string()),
        );
    }

    #[test]
    fn shrink_string_preserves_failure() {
        let prop = |s: &String| {
            if s.contains('!') {
                Err("bang".to_string())
            } else {
                Ok(())
            }
        };
        let (minimal, _) = shrink_to_minimal(&prop, "aaaa!bbbb!cc".to_string());
        assert_eq!(minimal, "!");
    }
}
