//! A bounded, blocking, FIFO hand-off queue for pipeline stages.
//!
//! This is the prepare → commit conduit of the pipelined deposit path:
//! the producer (prepare) blocks when the consumer (commit) falls more
//! than `capacity` batches behind, bounding in-flight memory, and the
//! consumer blocks while the queue is empty. Either side can [`close`]
//! the channel: a closed, drained queue ends the consumer loop, and a
//! closed queue refuses further sends so an aborting consumer unblocks
//! the producer.
//!
//! Built on `std::sync::{Mutex, Condvar}` only — no allocation beyond
//! the ring buffer, no spinning, no external dependencies.
//!
//! [`close`]: Handoff::close

use std::collections::VecDeque;
use std::sync::{Condvar, Mutex};

struct State<T> {
    queue: VecDeque<T>,
    closed: bool,
}

/// A bounded multi-producer multi-consumer blocking queue.
pub struct Handoff<T> {
    capacity: usize,
    state: Mutex<State<T>>,
    /// Signalled when space frees up (senders wait here).
    not_full: Condvar,
    /// Signalled when an item arrives or the queue closes (receivers
    /// wait here).
    not_empty: Condvar,
}

impl<T> Handoff<T> {
    /// A queue holding at most `capacity` items (clamped to ≥ 1).
    pub fn new(capacity: usize) -> Handoff<T> {
        Handoff {
            capacity: capacity.max(1),
            state: Mutex::new(State {
                queue: VecDeque::new(),
                closed: false,
            }),
            not_full: Condvar::new(),
            not_empty: Condvar::new(),
        }
    }

    /// Enqueue `item`, blocking while the queue is full. Returns
    /// `Err(item)` if the queue is (or becomes) closed before the item
    /// could be enqueued.
    pub fn send(&self, item: T) -> Result<(), T> {
        let mut state = self.state.lock().unwrap();
        while state.queue.len() >= self.capacity && !state.closed {
            state = self.not_full.wait(state).unwrap();
        }
        if state.closed {
            return Err(item);
        }
        state.queue.push_back(item);
        drop(state);
        self.not_empty.notify_one();
        Ok(())
    }

    /// Dequeue the next item, blocking while the queue is empty and
    /// open. Returns `None` once the queue is closed *and* drained.
    pub fn recv(&self) -> Option<T> {
        let mut state = self.state.lock().unwrap();
        loop {
            if let Some(item) = state.queue.pop_front() {
                drop(state);
                self.not_full.notify_one();
                return Some(item);
            }
            if state.closed {
                return None;
            }
            state = self.not_empty.wait(state).unwrap();
        }
    }

    /// Close the queue: senders fail fast, receivers drain what is
    /// already buffered and then get `None`. Idempotent.
    pub fn close(&self) {
        let mut state = self.state.lock().unwrap();
        state.closed = true;
        drop(state);
        self.not_full.notify_all();
        self.not_empty.notify_all();
    }

    /// Items currently buffered.
    pub fn len(&self) -> usize {
        self.state.lock().unwrap().queue.len()
    }

    /// True when nothing is buffered.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn fifo_within_capacity() {
        let q = Handoff::new(4);
        q.send(1).unwrap();
        q.send(2).unwrap();
        q.send(3).unwrap();
        assert_eq!(q.len(), 3);
        assert_eq!(q.recv(), Some(1));
        assert_eq!(q.recv(), Some(2));
        assert_eq!(q.recv(), Some(3));
        assert!(q.is_empty());
    }

    #[test]
    fn close_drains_then_ends() {
        let q = Handoff::new(2);
        q.send("a").unwrap();
        q.close();
        assert_eq!(q.send("b"), Err("b"));
        assert_eq!(q.recv(), Some("a"));
        assert_eq!(q.recv(), None);
        assert_eq!(q.recv(), None);
    }

    #[test]
    fn bounded_send_blocks_until_consumed() {
        let q = Arc::new(Handoff::new(1));
        q.send(0u64).unwrap();
        let producer = {
            let q = q.clone();
            std::thread::spawn(move || {
                for i in 1..=100u64 {
                    q.send(i).unwrap();
                }
                q.close();
            })
        };
        let mut expect = 0u64;
        while let Some(v) = q.recv() {
            assert_eq!(v, expect, "FIFO order violated under blocking");
            expect += 1;
        }
        assert_eq!(expect, 101);
        producer.join().unwrap();
    }

    #[test]
    fn close_unblocks_stuck_producer() {
        let q = Arc::new(Handoff::new(1));
        q.send(1).unwrap(); // full
        let producer = {
            let q = q.clone();
            std::thread::spawn(move || q.send(2))
        };
        // let the producer reach the full-queue wait, then abort
        std::thread::sleep(std::time::Duration::from_millis(20));
        q.close();
        assert_eq!(producer.join().unwrap(), Err(2));
    }
}
