//! Binary byte codecs.
//!
//! A small, explicit little-endian encoding layer used by the receipt
//! store's WAL records and the transport message formats. Hand-rolled
//! (rather than serde) so the on-disk and on-wire formats are stable,
//! inspectable, and independent of struct layout.

use std::fmt;

/// Errors produced while decoding.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CodecError {
    /// The input ended before the value was complete.
    UnexpectedEof {
        /// What was being decoded.
        what: &'static str,
    },
    /// A varint ran longer than 10 bytes.
    VarintOverflow,
    /// A length prefix exceeded the remaining input or a sanity limit.
    BadLength {
        /// The claimed length.
        len: u64,
    },
    /// Bytes claimed to be UTF-8 were not.
    InvalidUtf8,
    /// Input bytes were left over after a complete value was decoded —
    /// the frame is longer than the value it claims to carry.
    TrailingBytes {
        /// How many bytes remained unconsumed.
        n: usize,
    },
    /// An enum tag had no corresponding variant.
    BadTag {
        /// What was being decoded.
        what: &'static str,
        /// The unrecognized tag.
        tag: u8,
    },
}

impl fmt::Display for CodecError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CodecError::UnexpectedEof { what } => {
                write!(f, "unexpected end of input while decoding {what}")
            }
            CodecError::VarintOverflow => write!(f, "varint longer than 10 bytes"),
            CodecError::BadLength { len } => write!(f, "implausible length prefix {len}"),
            CodecError::InvalidUtf8 => write!(f, "invalid utf-8 in string field"),
            CodecError::TrailingBytes { n } => {
                write!(f, "{n} trailing bytes after a complete value")
            }
            CodecError::BadTag { what, tag } => {
                write!(f, "unrecognized tag {tag} while decoding {what}")
            }
        }
    }
}

impl std::error::Error for CodecError {}

/// Append-only encoder.
#[derive(Debug, Default)]
pub struct ByteWriter {
    buf: Vec<u8>,
}

impl ByteWriter {
    /// Fresh empty writer.
    pub fn new() -> Self {
        ByteWriter { buf: Vec::new() }
    }

    /// Fresh writer with reserved capacity.
    pub fn with_capacity(cap: usize) -> Self {
        ByteWriter {
            buf: Vec::with_capacity(cap),
        }
    }

    /// Bytes written so far.
    pub fn len(&self) -> usize {
        self.buf.len()
    }

    /// True if nothing has been written.
    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }

    /// Consume the writer, returning the encoded bytes.
    pub fn into_bytes(self) -> Vec<u8> {
        self.buf
    }

    /// Borrow the encoded bytes.
    pub fn as_bytes(&self) -> &[u8] {
        &self.buf
    }

    /// Write a single byte.
    pub fn put_u8(&mut self, v: u8) {
        self.buf.push(v);
    }

    /// Write a little-endian u32.
    pub fn put_u32(&mut self, v: u32) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Write a little-endian u64.
    pub fn put_u64(&mut self, v: u64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Write an LEB128 varint.
    pub fn put_varint(&mut self, mut v: u64) {
        loop {
            let byte = (v & 0x7F) as u8;
            v >>= 7;
            if v == 0 {
                self.buf.push(byte);
                return;
            }
            self.buf.push(byte | 0x80);
        }
    }

    /// Write a length-prefixed byte slice.
    pub fn put_bytes(&mut self, data: &[u8]) {
        self.put_varint(data.len() as u64);
        self.buf.extend_from_slice(data);
    }

    /// Write a length-prefixed UTF-8 string.
    pub fn put_str(&mut self, s: &str) {
        self.put_bytes(s.as_bytes());
    }

    /// Write raw bytes with no length prefix.
    pub fn put_raw(&mut self, data: &[u8]) {
        self.buf.extend_from_slice(data);
    }
}

/// Cursor-based decoder over a byte slice.
#[derive(Debug, Clone)]
pub struct ByteReader<'a> {
    data: &'a [u8],
    pos: usize,
}

impl<'a> ByteReader<'a> {
    /// Decode from the start of `data`.
    pub fn new(data: &'a [u8]) -> Self {
        ByteReader { data, pos: 0 }
    }

    /// Bytes not yet consumed.
    pub fn remaining(&self) -> usize {
        self.data.len() - self.pos
    }

    /// True if all input has been consumed.
    pub fn is_exhausted(&self) -> bool {
        self.remaining() == 0
    }

    /// Current cursor position.
    pub fn position(&self) -> usize {
        self.pos
    }

    fn take(&mut self, n: usize, what: &'static str) -> Result<&'a [u8], CodecError> {
        if self.remaining() < n {
            return Err(CodecError::UnexpectedEof { what });
        }
        let s = &self.data[self.pos..self.pos + n];
        self.pos += n;
        Ok(s)
    }

    /// Read a single byte.
    pub fn get_u8(&mut self) -> Result<u8, CodecError> {
        Ok(self.take(1, "u8")?[0])
    }

    /// Read a little-endian u32.
    pub fn get_u32(&mut self) -> Result<u32, CodecError> {
        let b = self.take(4, "u32")?;
        Ok(u32::from_le_bytes([b[0], b[1], b[2], b[3]]))
    }

    /// Read a little-endian u64.
    pub fn get_u64(&mut self) -> Result<u64, CodecError> {
        let b = self.take(8, "u64")?;
        Ok(u64::from_le_bytes([
            b[0], b[1], b[2], b[3], b[4], b[5], b[6], b[7],
        ]))
    }

    /// Read an LEB128 varint.
    pub fn get_varint(&mut self) -> Result<u64, CodecError> {
        let mut result: u64 = 0;
        let mut shift = 0u32;
        loop {
            let byte = self
                .get_u8()
                .map_err(|_| CodecError::UnexpectedEof { what: "varint" })?;
            if shift == 63 && byte > 1 {
                return Err(CodecError::VarintOverflow);
            }
            result |= ((byte & 0x7F) as u64) << shift;
            if byte & 0x80 == 0 {
                return Ok(result);
            }
            shift += 7;
            if shift > 63 {
                return Err(CodecError::VarintOverflow);
            }
        }
    }

    /// Read a length-prefixed byte slice (borrowed from the input).
    pub fn get_bytes(&mut self) -> Result<&'a [u8], CodecError> {
        let len = self.get_varint()?;
        if len > self.remaining() as u64 {
            return Err(CodecError::BadLength { len });
        }
        self.take(len as usize, "bytes body")
    }

    /// Read a length-prefixed UTF-8 string (borrowed from the input).
    pub fn get_str(&mut self) -> Result<&'a str, CodecError> {
        let b = self.get_bytes()?;
        std::str::from_utf8(b).map_err(|_| CodecError::InvalidUtf8)
    }

    /// Read `n` raw bytes with no length prefix.
    pub fn get_raw(&mut self, n: usize) -> Result<&'a [u8], CodecError> {
        self.take(n, "raw bytes")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_primitives() {
        let mut w = ByteWriter::new();
        w.put_u8(0xAB);
        w.put_u32(0xDEAD_BEEF);
        w.put_u64(0x0123_4567_89AB_CDEF);
        w.put_varint(0);
        w.put_varint(127);
        w.put_varint(128);
        w.put_varint(u64::MAX);
        w.put_str("MEMORY_poller1_20100925.gz");
        w.put_bytes(&[1, 2, 3]);

        let bytes = w.into_bytes();
        let mut r = ByteReader::new(&bytes);
        assert_eq!(r.get_u8().unwrap(), 0xAB);
        assert_eq!(r.get_u32().unwrap(), 0xDEAD_BEEF);
        assert_eq!(r.get_u64().unwrap(), 0x0123_4567_89AB_CDEF);
        assert_eq!(r.get_varint().unwrap(), 0);
        assert_eq!(r.get_varint().unwrap(), 127);
        assert_eq!(r.get_varint().unwrap(), 128);
        assert_eq!(r.get_varint().unwrap(), u64::MAX);
        assert_eq!(r.get_str().unwrap(), "MEMORY_poller1_20100925.gz");
        assert_eq!(r.get_bytes().unwrap(), &[1, 2, 3]);
        assert!(r.is_exhausted());
    }

    #[test]
    fn varint_sizes() {
        for (v, expect) in [(0u64, 1usize), (127, 1), (128, 2), (16_383, 2), (16_384, 3)] {
            let mut w = ByteWriter::new();
            w.put_varint(v);
            assert_eq!(w.len(), expect, "size of varint {v}");
        }
        let mut w = ByteWriter::new();
        w.put_varint(u64::MAX);
        assert_eq!(w.len(), 10);
    }

    #[test]
    fn eof_errors() {
        let mut r = ByteReader::new(&[0x01]);
        assert!(r.get_u32().is_err());
        let mut r = ByteReader::new(&[]);
        assert!(matches!(r.get_u8(), Err(CodecError::UnexpectedEof { .. })));
    }

    #[test]
    fn truncated_varint() {
        // continuation bit set, then EOF
        let mut r = ByteReader::new(&[0x80]);
        assert!(r.get_varint().is_err());
    }

    #[test]
    fn overlong_varint_rejected() {
        // 11 continuation bytes
        let data = [0xFF; 11];
        let mut r = ByteReader::new(&data);
        assert_eq!(r.get_varint(), Err(CodecError::VarintOverflow));
    }

    #[test]
    fn bad_length_prefix() {
        let mut w = ByteWriter::new();
        w.put_varint(1_000_000);
        let bytes = w.into_bytes();
        let mut r = ByteReader::new(&bytes);
        assert!(matches!(r.get_bytes(), Err(CodecError::BadLength { .. })));
    }

    #[test]
    fn invalid_utf8_rejected() {
        let mut w = ByteWriter::new();
        w.put_bytes(&[0xFF, 0xFE]);
        let bytes = w.into_bytes();
        let mut r = ByteReader::new(&bytes);
        assert_eq!(r.get_str(), Err(CodecError::InvalidUtf8));
    }
}
