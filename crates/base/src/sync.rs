//! Poison-ignoring synchronization primitives over `std::sync`.
//!
//! Thin wrappers with the `parking_lot` call shape (`lock()` /
//! `read()` / `write()` return guards directly, no `Result`), so the
//! workspace needs no external locking crate. Poisoning is ignored: a
//! panic while holding a lock does not wedge every later access —
//! Bistro's shared state (receipt tables, the in-memory VFS tree,
//! trigger logs) is always structurally valid between mutations, and
//! the test harness intentionally crashes servers mid-run to exercise
//! recovery paths.

use std::sync::{self, PoisonError};

pub use std::sync::{MutexGuard, RwLockReadGuard, RwLockWriteGuard};

/// A mutual-exclusion lock whose `lock()` never fails.
#[derive(Debug, Default)]
pub struct Mutex<T: ?Sized>(sync::Mutex<T>);

impl<T> Mutex<T> {
    /// Wrap a value in a new mutex.
    pub const fn new(value: T) -> Mutex<T> {
        Mutex(sync::Mutex::new(value))
    }

    /// Consume the mutex, returning the inner value.
    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquire the lock, ignoring poisoning.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        self.0.lock().unwrap_or_else(PoisonError::into_inner)
    }

    /// Try to acquire the lock without blocking.
    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        match self.0.try_lock() {
            Ok(g) => Some(g),
            Err(sync::TryLockError::Poisoned(p)) => Some(p.into_inner()),
            Err(sync::TryLockError::WouldBlock) => None,
        }
    }

    /// Mutable access without locking (requires exclusive ownership).
    pub fn get_mut(&mut self) -> &mut T {
        self.0.get_mut().unwrap_or_else(PoisonError::into_inner)
    }
}

/// A reader-writer lock whose `read()`/`write()` never fail.
#[derive(Debug, Default)]
pub struct RwLock<T: ?Sized>(sync::RwLock<T>);

impl<T> RwLock<T> {
    /// Wrap a value in a new reader-writer lock.
    pub const fn new(value: T) -> RwLock<T> {
        RwLock(sync::RwLock::new(value))
    }

    /// Consume the lock, returning the inner value.
    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Acquire shared read access, ignoring poisoning.
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        self.0.read().unwrap_or_else(PoisonError::into_inner)
    }

    /// Acquire exclusive write access, ignoring poisoning.
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        self.0.write().unwrap_or_else(PoisonError::into_inner)
    }

    /// Mutable access without locking (requires exclusive ownership).
    pub fn get_mut(&mut self) -> &mut T {
        self.0.get_mut().unwrap_or_else(PoisonError::into_inner)
    }
}

/// A condition variable paired with [`Mutex`]; waits ignore poisoning.
///
/// Unlike `parking_lot`, `wait` consumes and returns the guard (the
/// `std` shape) — callers re-bind: `guard = cv.wait(guard)`.
#[derive(Debug, Default)]
pub struct Condvar(sync::Condvar);

impl Condvar {
    /// A new condition variable.
    pub const fn new() -> Condvar {
        Condvar(sync::Condvar::new())
    }

    /// Block until notified, releasing the lock while waiting.
    pub fn wait<'a, T>(&self, guard: MutexGuard<'a, T>) -> MutexGuard<'a, T> {
        self.0.wait(guard).unwrap_or_else(PoisonError::into_inner)
    }

    /// Block until notified or `timeout` elapses; the bool is `true`
    /// if the wait timed out.
    pub fn wait_timeout<'a, T>(
        &self,
        guard: MutexGuard<'a, T>,
        timeout: std::time::Duration,
    ) -> (MutexGuard<'a, T>, bool) {
        match self.0.wait_timeout(guard, timeout) {
            Ok((g, res)) => (g, res.timed_out()),
            Err(p) => {
                let (g, res) = p.into_inner();
                (g, res.timed_out())
            }
        }
    }

    /// Wake one waiter.
    pub fn notify_one(&self) {
        self.0.notify_one();
    }

    /// Wake all waiters.
    pub fn notify_all(&self) {
        self.0.notify_all();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn mutex_basic() {
        let m = Mutex::new(1);
        *m.lock() += 1;
        assert_eq!(*m.lock(), 2);
        assert_eq!(m.into_inner(), 2);
    }

    #[test]
    fn rwlock_basic() {
        let l = RwLock::new(vec![1, 2]);
        assert_eq!(l.read().len(), 2);
        l.write().push(3);
        assert_eq!(*l.read(), vec![1, 2, 3]);
    }

    #[test]
    fn mutex_survives_poisoning() {
        let m = Arc::new(Mutex::new(0u32));
        let m2 = m.clone();
        let _ = std::thread::spawn(move || {
            let _g = m2.lock();
            panic!("poison the lock");
        })
        .join();
        // parking_lot-style: later accesses still succeed
        *m.lock() += 5;
        assert_eq!(*m.lock(), 5);
    }

    #[test]
    fn rwlock_survives_poisoning() {
        let l = Arc::new(RwLock::new(7u32));
        let l2 = l.clone();
        let _ = std::thread::spawn(move || {
            let _g = l2.write();
            panic!("poison the lock");
        })
        .join();
        assert_eq!(*l.read(), 7);
        *l.write() = 8;
        assert_eq!(*l.read(), 8);
    }

    #[test]
    fn condvar_wakes_waiter() {
        let pair = Arc::new((Mutex::new(false), Condvar::new()));
        let pair2 = pair.clone();
        let t = std::thread::spawn(move || {
            let (lock, cv) = &*pair2;
            let mut ready = lock.lock();
            while !*ready {
                ready = cv.wait(ready);
            }
        });
        {
            let (lock, cv) = &*pair;
            *lock.lock() = true;
            cv.notify_one();
        }
        t.join().unwrap();
    }
}
