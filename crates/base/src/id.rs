//! Strongly-typed identifiers.
//!
//! Receipts, scheduling jobs and transport messages all refer to files,
//! feeds, subscribers and batches. Newtype ids keep those spaces from being
//! mixed up and make the binary encodings self-describing.

use std::fmt;
use std::sync::atomic::{AtomicU64, Ordering};

macro_rules! define_id {
    ($(#[$doc:meta])* $name:ident, $prefix:literal) => {
        $(#[$doc])*
        #[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
        pub struct $name(pub u64);

        impl $name {
            /// The raw numeric value.
            pub const fn raw(self) -> u64 {
                self.0
            }
        }

        impl fmt::Debug for $name {
            fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                write!(f, concat!($prefix, "{}"), self.0)
            }
        }

        impl fmt::Display for $name {
            fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                write!(f, concat!($prefix, "{}"), self.0)
            }
        }

        impl From<u64> for $name {
            fn from(v: u64) -> Self {
                $name(v)
            }
        }
    };
}

define_id!(
    /// Identifies one received file (assigned by the receipt store on
    /// arrival; stable across restarts because it is WAL-logged).
    FileId,
    "file#"
);
define_id!(
    /// Identifies a registered consumer feed definition.
    FeedId,
    "feed#"
);
define_id!(
    /// Identifies a registered subscriber.
    SubscriberId,
    "sub#"
);
define_id!(
    /// Identifies a batch of files sharing a trigger invocation.
    BatchId,
    "batch#"
);

/// Thread-safe monotone id generator.
#[derive(Debug)]
pub struct IdGen {
    next: AtomicU64,
}

impl IdGen {
    /// Start issuing ids from 1 (0 is reserved as a "nil" value).
    pub fn new() -> Self {
        Self::starting_at(1)
    }

    /// Start issuing ids from `first` (used after recovery to resume past
    /// the highest id found in the log).
    pub fn starting_at(first: u64) -> Self {
        IdGen {
            next: AtomicU64::new(first),
        }
    }

    /// Issue the next raw id.
    pub fn next_raw(&self) -> u64 {
        self.next.fetch_add(1, Ordering::Relaxed)
    }

    /// Issue a typed id.
    pub fn next<T: From<u64>>(&self) -> T {
        T::from(self.next_raw())
    }

    /// The next id that *would* be issued, without issuing it. Persisted
    /// as the id high-water mark so recovery can resume past allocations
    /// that were burned by failed appends.
    pub fn peek(&self) -> u64 {
        self.next.load(Ordering::Relaxed)
    }

    /// Ensure future ids are strictly greater than `seen`.
    pub fn bump_past(&self, seen: u64) {
        let mut cur = self.next.load(Ordering::Relaxed);
        while cur <= seen {
            match self.next.compare_exchange_weak(
                cur,
                seen + 1,
                Ordering::Relaxed,
                Ordering::Relaxed,
            ) {
                Ok(_) => break,
                Err(actual) => cur = actual,
            }
        }
    }
}

impl Default for IdGen {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashSet;

    #[test]
    fn ids_are_distinct_types() {
        let f = FileId(3);
        let s = SubscriberId(3);
        assert_eq!(f.raw(), s.raw());
        assert_eq!(format!("{f}"), "file#3");
        assert_eq!(format!("{s}"), "sub#3");
    }

    #[test]
    fn idgen_monotone() {
        let g = IdGen::new();
        let a: FileId = g.next();
        let b: FileId = g.next();
        assert!(b.raw() > a.raw());
        assert_eq!(a.raw(), 1);
    }

    #[test]
    fn idgen_bump_past() {
        let g = IdGen::new();
        g.bump_past(100);
        let a: FeedId = g.next();
        assert_eq!(a.raw(), 101);
        // bumping below current is a no-op
        g.bump_past(5);
        let b: FeedId = g.next();
        assert_eq!(b.raw(), 102);
    }

    #[test]
    fn idgen_peek_does_not_allocate() {
        let g = IdGen::new();
        assert_eq!(g.peek(), 1);
        let a: FileId = g.next();
        assert_eq!(a.raw(), 1);
        assert_eq!(g.peek(), 2);
        g.bump_past(10);
        assert_eq!(g.peek(), 11);
    }

    #[test]
    fn idgen_concurrent_unique() {
        let g = std::sync::Arc::new(IdGen::new());
        let mut handles = vec![];
        for _ in 0..4 {
            let g = g.clone();
            handles.push(std::thread::spawn(move || {
                (0..1000).map(|_| g.next_raw()).collect::<Vec<_>>()
            }));
        }
        let mut all = HashSet::new();
        for h in handles {
            for id in h.join().unwrap() {
                assert!(all.insert(id), "duplicate id {id}");
            }
        }
        assert_eq!(all.len(), 4000);
    }
}
