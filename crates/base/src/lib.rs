//! # bistro-base
//!
//! Shared substrate for the Bistro data feed management system: time points
//! and clocks (wall and simulated), strongly-typed identifiers, checksums
//! (CRC32 / FNV-1a), the binary byte codecs used by the receipt store's
//! write-ahead log and the transport message formats, plus the hermetic
//! build substrate: seedable PRNG ([`rng`]), property-testing harness
//! ([`prop`]) and poison-ignoring lock wrappers ([`sync`]).
//!
//! Everything in this crate is dependency-free and deterministic so that
//! the higher layers (receipts, scheduler, transport, core) can be tested
//! under a fully simulated clock, offline, with no external crates.

pub mod checksum;
pub mod clock;
pub mod codec;
pub mod handoff;
pub mod id;
pub mod pool;
pub mod prop;
pub mod rng;
pub mod sync;
pub mod time;

pub use checksum::{crc32, fnv1a64, Crc32};
pub use clock::{Clock, SharedClock, SimClock, WallClock};
pub use codec::{ByteReader, ByteWriter, CodecError};
pub use handoff::Handoff;
pub use id::{BatchId, FeedId, FileId, IdGen, SubscriberId};
pub use pool::{Pool, ShardStat};
pub use rng::Rng;
pub use time::{TimePoint, TimeSpan};
