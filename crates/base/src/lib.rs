//! # bistro-base
//!
//! Shared substrate for the Bistro data feed management system: time points
//! and clocks (wall and simulated), strongly-typed identifiers, checksums
//! (CRC32 / FNV-1a), and the binary byte codecs used by the receipt store's
//! write-ahead log and the transport message formats.
//!
//! Everything in this crate is dependency-light and deterministic so that
//! the higher layers (receipts, scheduler, transport, core) can be tested
//! under a fully simulated clock.

pub mod checksum;
pub mod clock;
pub mod codec;
pub mod id;
pub mod time;

pub use checksum::{crc32, fnv1a64, Crc32};
pub use clock::{Clock, SharedClock, SimClock, WallClock};
pub use codec::{ByteReader, ByteWriter, CodecError};
pub use id::{BatchId, FeedId, FileId, IdGen, SubscriberId};
pub use time::{TimePoint, TimeSpan};
