//! Clocks.
//!
//! Every Bistro component that needs "now" takes a [`SharedClock`] so the
//! entire server can run either against the operating-system clock
//! ([`WallClock`]) or a manually advanced simulated clock ([`SimClock`]).
//! The simulated clock is what makes the scheduling, batching and
//! reliability experiments deterministic and laptop-fast: a day of feed
//! traffic replays in milliseconds.

use crate::sync::Mutex;
use crate::time::{TimePoint, TimeSpan};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{SystemTime, UNIX_EPOCH};

/// A source of the current time.
pub trait Clock: Send + Sync {
    /// The current time.
    fn now(&self) -> TimePoint;
}

/// Shared handle to a clock.
pub type SharedClock = Arc<dyn Clock>;

/// The operating-system clock.
#[derive(Debug, Default)]
pub struct WallClock;

impl WallClock {
    /// Create a shared wall clock.
    pub fn shared() -> SharedClock {
        Arc::new(WallClock)
    }
}

impl Clock for WallClock {
    fn now(&self) -> TimePoint {
        let d = SystemTime::now()
            .duration_since(UNIX_EPOCH)
            .unwrap_or_default();
        TimePoint::from_micros(d.as_micros() as u64)
    }
}

/// A manually advanced simulated clock.
///
/// Time only moves when [`SimClock::advance`] or [`SimClock::set`] is
/// called, and never moves backwards.
#[derive(Debug)]
pub struct SimClock {
    now_us: AtomicU64,
    // Serializes `set` calls so concurrent setters cannot interleave the
    // monotonicity check.
    set_lock: Mutex<()>,
}

impl SimClock {
    /// A simulated clock starting at the Unix epoch.
    pub fn new() -> Arc<SimClock> {
        Self::starting_at(TimePoint::EPOCH)
    }

    /// A simulated clock starting at the given time.
    pub fn starting_at(start: TimePoint) -> Arc<SimClock> {
        Arc::new(SimClock {
            now_us: AtomicU64::new(start.as_micros()),
            set_lock: Mutex::new(()),
        })
    }

    /// Advance the clock by `span` and return the new now.
    pub fn advance(&self, span: TimeSpan) -> TimePoint {
        let new = self
            .now_us
            .fetch_add(span.as_micros(), Ordering::SeqCst)
            .saturating_add(span.as_micros());
        TimePoint::from_micros(new)
    }

    /// Move the clock forward to `to`. Does nothing if `to` is in the past
    /// (the clock is monotone).
    pub fn set(&self, to: TimePoint) {
        let _g = self.set_lock.lock();
        let cur = self.now_us.load(Ordering::SeqCst);
        if to.as_micros() > cur {
            self.now_us.store(to.as_micros(), Ordering::SeqCst);
        }
    }
}

impl Clock for SimClock {
    fn now(&self) -> TimePoint {
        TimePoint::from_micros(self.now_us.load(Ordering::SeqCst))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sim_clock_advances() {
        let c = SimClock::new();
        assert_eq!(c.now(), TimePoint::EPOCH);
        c.advance(TimeSpan::from_secs(10));
        assert_eq!(c.now(), TimePoint::from_secs(10));
        let t = c.advance(TimeSpan::from_secs(5));
        assert_eq!(t, TimePoint::from_secs(15));
    }

    #[test]
    fn sim_clock_set_is_monotone() {
        let c = SimClock::starting_at(TimePoint::from_secs(100));
        c.set(TimePoint::from_secs(50));
        assert_eq!(c.now(), TimePoint::from_secs(100));
        c.set(TimePoint::from_secs(200));
        assert_eq!(c.now(), TimePoint::from_secs(200));
    }

    #[test]
    fn wall_clock_is_sane() {
        let c = WallClock;
        let t = c.now();
        // After 2020, before 2100.
        assert!(t > TimePoint::from_secs(1_577_836_800));
        assert!(t < TimePoint::from_secs(4_102_444_800));
    }

    #[test]
    fn shared_clock_trait_object() {
        let c: SharedClock = SimClock::starting_at(TimePoint::from_secs(7));
        assert_eq!(c.now(), TimePoint::from_secs(7));
    }

    #[test]
    fn sim_clock_concurrent_advance() {
        let c = SimClock::new();
        let mut handles = vec![];
        for _ in 0..8 {
            let c = Arc::clone(&c);
            handles.push(std::thread::spawn(move || {
                for _ in 0..1000 {
                    c.advance(TimeSpan::from_micros(1));
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(c.now(), TimePoint::from_micros(8_000));
    }
}
