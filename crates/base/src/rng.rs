//! Seedable, dependency-free pseudo-random numbers.
//!
//! A SplitMix64-seeded xoshiro256++ generator plus the small set of
//! distribution helpers the workload generators and experiments
//! actually use: uniform integer ranges, Bernoulli draws, Fisher-Yates
//! shuffle and exponential inter-arrival gaps. This replaces the
//! external `rand` crate so the workspace builds hermetically.
//!
//! Determinism is part of the contract: a given seed produces the same
//! stream on every platform and in every run, which is what makes
//! simnet traces and experiment schedules reproducible.

/// xoshiro256++ pseudo-random generator, seeded via SplitMix64.
///
/// Not cryptographically secure — it exists to drive deterministic
/// simulation workloads.
#[derive(Clone, Debug)]
pub struct Rng {
    s: [u64; 4],
}

/// Advance a SplitMix64 state and return the next output.
///
/// Also used on its own to derive independent child seeds (e.g. one
/// seed per property-test case) from a base seed.
pub fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

impl Rng {
    /// Build a generator from a 64-bit seed (SplitMix64-expanded into
    /// the full 256-bit xoshiro state, as the xoshiro authors
    /// recommend).
    pub fn seed_from_u64(seed: u64) -> Rng {
        let mut sm = seed;
        let s = [
            splitmix64(&mut sm),
            splitmix64(&mut sm),
            splitmix64(&mut sm),
            splitmix64(&mut sm),
        ];
        Rng { s }
    }

    /// Next raw 64-bit output.
    pub fn next_u64(&mut self) -> u64 {
        let result = self.s[0]
            .wrapping_add(self.s[3])
            .rotate_left(23)
            .wrapping_add(self.s[0]);
        let t = self.s[1] << 17;
        self.s[2] ^= self.s[0];
        self.s[3] ^= self.s[1];
        self.s[1] ^= self.s[2];
        self.s[0] ^= self.s[3];
        self.s[2] ^= t;
        self.s[3] = self.s[3].rotate_left(45);
        result
    }

    /// Next 32-bit output (upper half of the 64-bit stream).
    pub fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }

    /// Uniform draw in `[0, 1)` with 53 bits of precision.
    pub fn next_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Uniform `u64` in `[0, bound)` via Lemire-style rejection
    /// (unbiased). `bound` must be non-zero.
    fn bounded(&mut self, bound: u64) -> u64 {
        debug_assert!(bound > 0);
        // rejection zone: discard draws that would wrap unevenly
        let threshold = bound.wrapping_neg() % bound;
        loop {
            let r = self.next_u64();
            let (hi, lo) = {
                let wide = (r as u128) * (bound as u128);
                ((wide >> 64) as u64, wide as u64)
            };
            if lo >= threshold {
                return hi;
            }
        }
    }

    /// Uniform draw from an integer range (`a..b` or `a..=b`).
    ///
    /// Panics on an empty range, matching `rand::Rng::gen_range`.
    pub fn gen_range<T, R>(&mut self, range: R) -> T
    where
        T: UniformInt,
        R: SampleRange<T>,
    {
        range.sample(self)
    }

    /// Bernoulli draw: `true` with probability `p` (clamped to `[0,1]`).
    pub fn gen_bool(&mut self, p: f64) -> bool {
        if p >= 1.0 {
            return true;
        }
        if p <= 0.0 {
            return false;
        }
        self.next_f64() < p
    }

    /// Fisher-Yates shuffle, in place.
    pub fn shuffle<T>(&mut self, slice: &mut [T]) {
        for i in (1..slice.len()).rev() {
            let j = self.bounded(i as u64 + 1) as usize;
            slice.swap(i, j);
        }
    }

    /// Pick a uniformly random element of a non-empty slice.
    pub fn choose<'a, T>(&mut self, slice: &'a [T]) -> &'a T {
        assert!(!slice.is_empty(), "choose from empty slice");
        &slice[self.bounded(slice.len() as u64) as usize]
    }

    /// Exponentially distributed inter-arrival gap with the given mean
    /// (Poisson-process waiting time). Returns a non-negative value.
    pub fn exp(&mut self, mean: f64) -> f64 {
        // 1 - u is in (0, 1], so ln never sees zero
        -mean * (1.0 - self.next_f64()).ln()
    }
}

/// Integer types [`Rng::gen_range`] can draw uniformly.
pub trait UniformInt: Copy + PartialOrd {
    /// Widen to the `u64` sampling domain, offset so ordering is
    /// preserved for signed types.
    fn to_u64_offset(self) -> u64;
    /// Inverse of [`UniformInt::to_u64_offset`].
    fn from_u64_offset(v: u64) -> Self;
}

macro_rules! impl_uniform_unsigned {
    ($($t:ty),*) => {$(
        impl UniformInt for $t {
            fn to_u64_offset(self) -> u64 { self as u64 }
            fn from_u64_offset(v: u64) -> $t { v as $t }
        }
    )*};
}
impl_uniform_unsigned!(u8, u16, u32, u64, usize);

macro_rules! impl_uniform_signed {
    ($($t:ty => $u:ty),*) => {$(
        impl UniformInt for $t {
            fn to_u64_offset(self) -> u64 {
                (self as $u ^ <$t>::MIN as $u) as u64
            }
            fn from_u64_offset(v: u64) -> $t {
                (v as $u ^ <$t>::MIN as $u) as $t
            }
        }
    )*};
}
impl_uniform_signed!(i8 => u8, i16 => u16, i32 => u32, i64 => u64, isize => usize);

/// Ranges that can be sampled by [`Rng::gen_range`].
pub trait SampleRange<T> {
    /// Draw a uniform value from the range.
    fn sample(self, rng: &mut Rng) -> T;
}

impl<T: UniformInt> SampleRange<T> for core::ops::Range<T> {
    fn sample(self, rng: &mut Rng) -> T {
        let lo = self.start.to_u64_offset();
        let hi = self.end.to_u64_offset();
        assert!(lo < hi, "gen_range called with empty range");
        T::from_u64_offset(lo + rng.bounded(hi - lo))
    }
}

impl<T: UniformInt> SampleRange<T> for core::ops::RangeInclusive<T> {
    fn sample(self, rng: &mut Rng) -> T {
        let lo = self.start().to_u64_offset();
        let hi = self.end().to_u64_offset();
        assert!(lo <= hi, "gen_range called with empty range");
        let span = hi - lo;
        if span == u64::MAX {
            return T::from_u64_offset(rng.next_u64());
        }
        T::from_u64_offset(lo + rng.bounded(span + 1))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn known_splitmix_vector() {
        // reference values for seed 1234567 (Vigna's splitmix64.c)
        let mut s = 1234567u64;
        assert_eq!(splitmix64(&mut s), 6457827717110365317);
        assert_eq!(splitmix64(&mut s), 3203168211198807973);
    }

    #[test]
    fn deterministic_for_fixed_seed() {
        let mut a = Rng::seed_from_u64(42);
        let mut b = Rng::seed_from_u64(42);
        for _ in 0..1000 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn seeds_produce_distinct_streams() {
        let mut a = Rng::seed_from_u64(1);
        let mut b = Rng::seed_from_u64(2);
        let same = (0..64).filter(|_| a.next_u64() == b.next_u64()).count();
        assert_eq!(same, 0);
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = Rng::seed_from_u64(7);
        for _ in 0..10_000 {
            let v: u64 = rng.gen_range(10..20);
            assert!((10..20).contains(&v));
            let w: i32 = rng.gen_range(-5..=5);
            assert!((-5..=5).contains(&w));
            let z: usize = rng.gen_range(0..1);
            assert_eq!(z, 0);
        }
    }

    #[test]
    fn range_covers_all_values() {
        let mut rng = Rng::seed_from_u64(9);
        let mut seen = [false; 10];
        for _ in 0..1_000 {
            seen[rng.gen_range(0usize..10)] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn full_u64_inclusive_range() {
        let mut rng = Rng::seed_from_u64(3);
        // must not overflow or hang
        let _: u64 = rng.gen_range(0..=u64::MAX);
    }

    #[test]
    fn gen_bool_tracks_probability() {
        let mut rng = Rng::seed_from_u64(11);
        let hits = (0..100_000).filter(|_| rng.gen_bool(0.3)).count();
        let frac = hits as f64 / 100_000.0;
        assert!((frac - 0.3).abs() < 0.01, "got {frac}");
        assert!(!rng.gen_bool(0.0));
        assert!(rng.gen_bool(1.0));
    }

    #[test]
    fn shuffle_is_a_permutation() {
        let mut rng = Rng::seed_from_u64(5);
        let mut v: Vec<u32> = (0..100).collect();
        rng.shuffle(&mut v);
        assert_ne!(v, (0..100).collect::<Vec<_>>());
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..100).collect::<Vec<_>>());
    }

    #[test]
    fn exp_has_requested_mean() {
        let mut rng = Rng::seed_from_u64(13);
        let n = 100_000;
        let sum: f64 = (0..n).map(|_| rng.exp(4.0)).sum();
        let mean = sum / n as f64;
        assert!((mean - 4.0).abs() < 0.1, "got {mean}");
    }
}
