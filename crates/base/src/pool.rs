//! A deterministic worker pool with sharded work queues.
//!
//! The parallel ingest stage (`core::parallel`) needs to fan CPU-bound
//! work (classify + normalize) across threads *without* giving up the
//! workspace's reproducibility guarantees. The usual shared-queue /
//! work-stealing designs make the item→worker assignment depend on
//! thread scheduling, which leaks into any per-worker accounting. This
//! pool instead uses **static sharding**: item `i` of a batch always
//! goes to worker `i % workers`, so the partition of work — and every
//! per-worker statistic derived from it — is a pure function of the
//! input, independent of how the OS schedules the threads.
//!
//! Results come back **in input order** regardless of completion order:
//! each worker writes its results straight into the pre-sized output
//! slots for its own shard. Combined with static sharding this gives the
//! determinism contract the ingest pipeline builds on: for a pure `f`,
//! `pool.map(items, f)` is byte-for-byte identical for any worker count.
//!
//! Threads are scoped per call (`std::thread::scope`) rather than kept
//! alive: batch ingest is bursty, a scope borrows the caller's data
//! without `'static` bounds or channels, and spawning a handful of
//! threads costs microseconds next to the milliseconds of I/O a batch
//! represents. Zero external dependencies, per the hermetic build rule.

/// How one worker's shard of a [`Pool::map_with_stats`] call went.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct ShardStat {
    /// Worker index in `0..workers`.
    pub worker: usize,
    /// Items this worker processed.
    pub jobs: u64,
}

/// A fixed-width worker pool. See the module docs for the determinism
/// contract.
#[derive(Clone, Copy, Debug)]
pub struct Pool {
    workers: usize,
}

impl Pool {
    /// A pool of `workers` threads; `0` is clamped to `1`.
    pub fn new(workers: usize) -> Pool {
        Pool {
            workers: workers.max(1),
        }
    }

    /// Configured worker count.
    pub fn workers(&self) -> usize {
        self.workers
    }

    /// Apply `f` to every item, in parallel across the pool's workers,
    /// returning results in input order. `f` receives `(index, item)`.
    ///
    /// With one worker (or zero/one items) the map runs inline on the
    /// caller's thread — same results, no spawn cost.
    pub fn map<T, R, F>(&self, items: Vec<T>, f: F) -> Vec<R>
    where
        T: Send,
        R: Send,
        F: Fn(usize, T) -> R + Sync,
    {
        self.map_with_stats(items, f).0
    }

    /// Like [`Pool::map`], also reporting per-worker shard statistics.
    /// The stats vector always has exactly `workers` entries (idle
    /// workers report zero jobs) and, by static sharding, is identical
    /// for a given input length no matter how threads were scheduled.
    pub fn map_with_stats<T, R, F>(&self, items: Vec<T>, f: F) -> (Vec<R>, Vec<ShardStat>)
    where
        T: Send,
        R: Send,
        F: Fn(usize, T) -> R + Sync,
    {
        let n = items.len();
        let workers = self.workers.min(n.max(1));
        let mut stats: Vec<ShardStat> = (0..self.workers)
            .map(|worker| ShardStat { worker, jobs: 0 })
            .collect();

        if workers <= 1 || n <= 1 {
            let out: Vec<R> = items
                .into_iter()
                .enumerate()
                .map(|(i, item)| f(i, item))
                .collect();
            stats[0].jobs = n as u64;
            return (out, stats);
        }

        // Shard statically: worker w takes items {i | i % workers == w},
        // keeping each shard's (index, item) pairs in input order.
        let mut shards: Vec<Vec<(usize, T)>> = (0..workers).map(|_| Vec::new()).collect();
        for (i, item) in items.into_iter().enumerate() {
            shards[i % workers].push((i, item));
        }
        for (w, shard) in shards.iter().enumerate() {
            stats[w].jobs = shard.len() as u64;
        }

        let mut results: Vec<Vec<(usize, R)>> = std::thread::scope(|scope| {
            let handles: Vec<_> = shards
                .into_iter()
                .map(|shard| {
                    scope.spawn(|| {
                        shard
                            .into_iter()
                            .map(|(i, item)| (i, f(i, item)))
                            .collect::<Vec<(usize, R)>>()
                    })
                })
                .collect();
            handles
                .into_iter()
                .map(|h| match h.join() {
                    Ok(v) => v,
                    Err(panic) => std::panic::resume_unwind(panic),
                })
                .collect()
        });

        // Merge back to input order: round-robin across shards is the
        // exact inverse of the sharding above.
        let mut out: Vec<Option<R>> = (0..n).map(|_| None).collect();
        for shard in &mut results {
            for (i, r) in shard.drain(..) {
                out[i] = Some(r);
            }
        }
        let out = out
            .into_iter()
            .map(|r| r.expect("every index assigned to exactly one shard"))
            .collect();
        (out, stats)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn map_preserves_input_order() {
        for workers in [1, 2, 4, 8] {
            let pool = Pool::new(workers);
            let items: Vec<u64> = (0..100).collect();
            let out = pool.map(items, |i, x| {
                assert_eq!(i as u64, x);
                x * 3
            });
            assert_eq!(out, (0..100).map(|x| x * 3).collect::<Vec<u64>>());
        }
    }

    #[test]
    fn results_identical_across_worker_counts() {
        let items: Vec<String> = (0..57).map(|i| format!("item-{i}")).collect();
        let reference = Pool::new(1).map(items.clone(), |i, s| format!("{i}:{s}"));
        for workers in [2, 3, 4, 8, 16] {
            let out = Pool::new(workers).map(items.clone(), |i, s| format!("{i}:{s}"));
            assert_eq!(out, reference, "workers={workers}");
        }
    }

    #[test]
    fn stats_are_static_shards() {
        let (out, stats) = Pool::new(4).map_with_stats((0..10).collect::<Vec<u64>>(), |_, x| x);
        assert_eq!(out.len(), 10);
        // 10 items over 4 workers: shards of 3, 3, 2, 2
        assert_eq!(
            stats,
            vec![
                ShardStat { worker: 0, jobs: 3 },
                ShardStat { worker: 1, jobs: 3 },
                ShardStat { worker: 2, jobs: 2 },
                ShardStat { worker: 3, jobs: 2 },
            ]
        );
        // stats don't depend on scheduling: re-run gives the same split
        let (_, again) = Pool::new(4).map_with_stats((0..10).collect::<Vec<u64>>(), |_, x| x);
        assert_eq!(again, stats);
    }

    #[test]
    fn inline_paths_report_stats() {
        let (out, stats) = Pool::new(1).map_with_stats(vec![5u64, 6, 7], |_, x| x + 1);
        assert_eq!(out, vec![6, 7, 8]);
        assert_eq!(stats.len(), 1);
        assert_eq!(stats[0].jobs, 3);
        // single item on a wide pool stays inline but keeps 8 stat slots
        let (out, stats) = Pool::new(8).map_with_stats(vec![1u64], |_, x| x);
        assert_eq!(out, vec![1]);
        assert_eq!(stats.len(), 8);
        assert_eq!(stats[0].jobs, 1);
        assert!(stats[1..].iter().all(|s| s.jobs == 0));
    }

    #[test]
    fn zero_workers_clamps_to_one() {
        let pool = Pool::new(0);
        assert_eq!(pool.workers(), 1);
        assert_eq!(pool.map(vec![1, 2], |_, x| x), vec![1, 2]);
    }

    #[test]
    fn empty_input_is_fine() {
        let (out, stats) = Pool::new(4).map_with_stats(Vec::<u64>::new(), |_, x| x);
        assert!(out.is_empty());
        assert_eq!(stats.len(), 4);
        assert!(stats.iter().all(|s| s.jobs == 0));
    }
}
