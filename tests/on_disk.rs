//! The same server pipeline over a REAL directory tree (`DiskFs`) and the
//! wall clock — what a production deployment would run. Uses a temp
//! directory; exercises atomic landing→staging moves, WAL recovery and
//! the CLI-facing discovery path against actual files.

use bistro::base::WallClock;
use bistro::config::parse_config;
use bistro::server::Server;
use bistro::vfs::{DiskFs, FileStore};
use std::sync::Arc;

fn temp_root(tag: &str) -> std::path::PathBuf {
    let dir = std::env::temp_dir().join(format!("bistro_e2e_{tag}_{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

const CONFIG: &str = r#"
    feed SNMP/MEMORY {
        pattern "MEMORY_poller%i_%Y%m%d.gz";
        normalize "%Y/%m/%d/%f";
    }
    subscriber wh { endpoint "wh"; subscribe SNMP/MEMORY; delivery push; }
"#;

#[test]
fn full_pipeline_on_real_filesystem() {
    let root = temp_root("pipeline");
    let store: Arc<dyn FileStore> = Arc::new(DiskFs::open(&root).unwrap());
    let clock = WallClock::shared();

    {
        let mut server = Server::new(
            "bistro",
            parse_config(CONFIG).unwrap(),
            clock.clone(),
            store.clone(),
        )
        .unwrap();
        server
            .deposit("MEMORY_poller1_20100925.gz", b"real bytes")
            .unwrap();
        server
            .deposit("MEMORY_poller2_20100925.gz", b"more bytes")
            .unwrap();
        server.deposit("stray.tmp", b"???").unwrap();

        assert_eq!(server.stats().files_ingested, 2);
        assert_eq!(server.stats().files_unknown, 1);
        server.persist_config().unwrap();
    } // process "exits"

    // the staged layout is on real disk
    let staged = root.join("staging/SNMP/MEMORY/2010/09/25/MEMORY_poller1_20100925.gz");
    assert_eq!(std::fs::read(&staged).unwrap(), b"real bytes");
    assert!(root.join("unknown/stray.tmp").exists());
    assert!(root.join("receipts/wal").exists());

    // a new process recovers config + receipts from disk alone
    let store2: Arc<dyn FileStore> = Arc::new(DiskFs::open(&root).unwrap());
    let server = Server::open_existing("bistro", clock, store2).unwrap();
    assert_eq!(server.receipts().live_count(), 2);
    assert!(server
        .receipts()
        .pending_for("wh", &["SNMP/MEMORY".to_string()])
        .is_empty());

    // analyzer saw the stray file
    assert_eq!(server.discovery_report(1).len(), 1);

    let _ = std::fs::remove_dir_all(&root);
}

#[test]
fn wal_survives_partial_disk_writes() {
    // torn-tail recovery on the real filesystem
    let root = temp_root("torn");
    let store: Arc<dyn FileStore> = Arc::new(DiskFs::open(&root).unwrap());
    let clock = WallClock::shared();
    {
        let mut server = Server::new(
            "bistro",
            parse_config(CONFIG).unwrap(),
            clock.clone(),
            store.clone(),
        )
        .unwrap();
        server.deposit("MEMORY_poller1_20100925.gz", b"x").unwrap();
    }
    // simulate a torn write at the end of the active WAL segment
    let seg_dir = root.join("receipts/wal");
    let seg = std::fs::read_dir(&seg_dir)
        .unwrap()
        .map(|e| e.unwrap().path())
        .find(|p| p.extension().map(|e| e == "seg").unwrap_or(false))
        .expect("a wal segment");
    let mut bytes = std::fs::read(&seg).unwrap();
    bytes.extend_from_slice(&[0xDE, 0xAD]); // partial frame
    std::fs::write(&seg, &bytes).unwrap();

    let store2: Arc<dyn FileStore> = Arc::new(DiskFs::open(&root).unwrap());
    let server = Server::new("bistro", parse_config(CONFIG).unwrap(), clock, store2).unwrap();
    assert_eq!(
        server.receipts().live_count(),
        1,
        "torn tail discarded, data intact"
    );

    let _ = std::fs::remove_dir_all(&root);
}
