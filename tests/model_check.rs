//! Bounded exhaustive model checking of the distributed stack
//! (DESIGN.md §11), driven by `bistro-mc`.
//!
//! Each test prints one `[mc] scenario=…` line with the explored-state
//! and duration counters; the CI `mc` stage runs this file uncaptured
//! so those counters land in the build log.

use bistro::mc::scenarios::{ClusterFailover, SingleServer};
use bistro::mc::{explore, replay, Action, Bounds, Model, Outcome};

/// Debug-mode exploration costs roughly a millisecond per transition,
/// so the default caps keep a plain `cargo test` run around a minute
/// while still covering ~20k distinct states across the file. The CI
/// `mc` stage raises the cap through `BISTRO_MC_STATES` and runs in
/// release mode, where the same scenarios cover >100k states.
fn state_cap(default_states: usize) -> usize {
    std::env::var("BISTRO_MC_STATES")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(default_states)
}

fn report(scenario: &str, outcome: &Outcome) {
    let label = match outcome {
        Outcome::Pass(_) => "pass",
        Outcome::Truncated(_) => "truncated",
        Outcome::Violation { .. } => "violation",
    };
    println!(
        "[mc] scenario={scenario} outcome={label} {}",
        outcome.stats()
    );
}

/// Scenario 1: reliable delivery over a single lossy link. Every
/// interleaving of message delivery, loss, duplication and retry-timer
/// firings for two deposited files — exactly-once receipts and
/// quiescence completeness must hold in every reached state.
#[test]
fn reliable_link_survives_drops_duplicates_and_retries() {
    let mut model = SingleServer::reliable_delivery(2, 4);
    let outcome = explore(
        &mut model,
        Bounds {
            max_depth: 12,
            max_states: state_cap(14_000),
        },
    );
    report("reliable-link", &outcome);
    if let Some(cx) = outcome.counterexample() {
        panic!("unexpected counterexample:\n{cx}");
    }
    assert!(
        outcome.stats().states >= 12_000,
        "exploration too shallow: {}",
        outcome.stats()
    );
}

/// Scenario 2: crash at any point, restart over the durable store. WAL
/// replay must preserve every acked receipt and the unacked backfill
/// must complete delivery without double-applying at the subscriber.
#[test]
fn crash_restart_replays_wal_and_backfills_unacked() {
    let mut model = SingleServer::crash_restart(2);
    let outcome = explore(
        &mut model,
        Bounds {
            max_depth: 12,
            max_states: state_cap(6_000),
        },
    );
    report("crash-restart", &outcome);
    if let Some(cx) = outcome.counterexample() {
        panic!("unexpected counterexample:\n{cx}");
    }
    assert!(
        outcome.stats().states >= 5_000,
        "exploration too shallow: {}",
        outcome.stats()
    );
}

/// Scenario 3 with the replica epoch fence on (the default): every
/// interleaving of ingress, crash, failure declaration and control- and
/// data-plane message delivery keeps exactly-once delivery, epoch
/// monotonicity and the single-live-home property.
#[test]
fn cluster_failover_with_fence_holds_every_invariant() {
    let mut model = ClusterFailover::new(2, true);
    let outcome = explore(
        &mut model,
        Bounds {
            max_depth: 14,
            max_states: 60_000,
        },
    );
    report("cluster-failover", &outcome);
    if let Some(cx) = outcome.counterexample() {
        panic!("unexpected counterexample:\n{cx}");
    }
    // the reachable space at this depth is small (a few hundred states)
    // but must be explored to exhaustion, i.e. the outcome is Pass, not
    // Truncated, and every one of those states passed every invariant
    assert!(
        matches!(outcome, Outcome::Pass(_)),
        "failover space must be exhausted: {}",
        outcome.stats()
    );
    assert!(
        outcome.stats().states >= 200,
        "exploration too shallow: {}",
        outcome.stats()
    );
}

/// Revert-verified regression for the in-flight-replicate vs.
/// backfill-marking race: with the fence disabled
/// ([`bistro::server::Cluster::set_replica_fence`]) the checker must
/// rediscover the duplicate delivery and produce a minimized,
/// replayable counterexample; the minimal schedule necessarily
/// contains the crash, the failure declaration, and the late replica.
#[test]
fn disabling_the_replica_fence_reintroduces_the_backfill_race() {
    let mut model = ClusterFailover::new(1, false);
    let outcome = explore(
        &mut model,
        Bounds {
            max_depth: 14,
            max_states: 60_000,
        },
    );
    report("cluster-failover-unfenced", &outcome);
    let cx = outcome
        .counterexample()
        .expect("the unfenced race must be found");
    println!("{cx}");
    assert!(
        cx.invariant.contains("exactly-once"),
        "wrong invariant: {}",
        cx.invariant
    );
    assert!(
        cx.trace.iter().any(|a| matches!(a, Action::Crash { .. })),
        "minimal trace must crash the home"
    );
    assert!(
        cx.trace
            .iter()
            .any(|a| matches!(a, Action::DeclareFailed { .. })),
        "minimal trace must declare the failure"
    );
    // the witness replays: same trace, same violation
    replay(&mut model, &cx.trace).expect("counterexample must replay");
    assert!(
        model.check().is_err(),
        "replaying the counterexample must reproduce the violation"
    );
    // and the fence closes exactly this schedule: replaying it with the
    // fence on must never violate — the fence rejects the late replica,
    // so the duplicate delivery it would have produced no longer exists
    // as an action (skipped below) and no state along the way breaks an
    // invariant
    let mut fenced = ClusterFailover::new(1, true);
    let mut skipped = 0;
    for action in &cx.trace {
        if fenced.apply(action).is_err() {
            skipped += 1;
        }
        assert!(
            fenced.check().is_ok(),
            "the epoch fence must close the counterexample schedule"
        );
    }
    assert!(
        skipped > 0,
        "the fence must make the duplicate-delivery action impossible"
    );
}

/// Same-seed determinism regression (the property replay-based checking
/// rests on): two independently built models stepped through the same
/// schedule must agree on every state digest. Catches nondeterministic
/// iteration (HashMap order differs between instances within one
/// process) sneaking back into the protocol layers.
#[test]
fn same_schedule_twice_yields_identical_state_digests() {
    let mut a = ClusterFailover::new(2, true);
    let mut b = ClusterFailover::new(2, true);
    assert_eq!(a.digest(), b.digest(), "initial digests diverge");
    for step in 0..32 {
        let actions = a.enabled();
        let Some(action) = actions.into_iter().next() else {
            break;
        };
        a.apply(&action).expect("run A applies");
        b.apply(&action).expect("run B applies");
        assert_eq!(
            a.digest(),
            b.digest(),
            "digests diverge at step {step} after {action}"
        );
    }

    let mut a = SingleServer::reliable_delivery(2, 4);
    let mut b = SingleServer::reliable_delivery(2, 4);
    assert_eq!(a.digest(), b.digest(), "initial digests diverge");
    for step in 0..32 {
        // exercise the *last* enabled action too (retry firings, crash
        // paths) by alternating ends of the enabled set
        let actions = a.enabled();
        if actions.is_empty() {
            break;
        }
        let action = if step % 2 == 0 {
            actions.into_iter().next().unwrap()
        } else {
            actions.into_iter().next_back().unwrap()
        };
        a.apply(&action).expect("run A applies");
        b.apply(&action).expect("run B applies");
        assert_eq!(
            a.digest(),
            b.digest(),
            "digests diverge at step {step} after {action}"
        );
    }
}
