//! Workspace-level integration: drive the full SNMP scenario through the
//! umbrella crate, exercising config → classification → normalization →
//! compression → delivery → batching → monitoring → expiration →
//! archival → analyzer in one continuous run.

use bistro::base::{Clock, SimClock, TimePoint, TimeSpan};
use bistro::compress::container;
use bistro::config::parse_config;
use bistro::server::Server;
use bistro::simnet::{generate, payload::payload_for, FleetConfig, SubfeedSpec};
use bistro::vfs::{FileStore, MemFs};

const START: TimePoint = TimePoint::from_secs(1_285_372_800);

#[test]
fn day_in_the_life() {
    let config = parse_config(
        r#"
        server { retention 12h; archive on; }

        feed SNMP/BPS    { pattern "BPS_poller%i_%Y%m%d%H%M.csv"; }
        feed SNMP/CPU    { pattern "CPU_poller%i_%Y%m%d%H%M.csv"; compress lzss; }
        feed SNMP/MEMORY { pattern "MEMORY_poller%i_%Y%m%d%H%M.csv"; normalize "%Y/%m/%d/%H/%f"; }

        subscriber warehouse {
            endpoint "wh";
            subscribe SNMP;
            delivery push;
            deadline 60s;
            batch count 3 window 10m;
            trigger remote "refresh %N n=%c";
        }
        subscriber monitor_app {
            endpoint "mon";
            subscribe SNMP/CPU;
            delivery notify;
            deadline 5s;
        }
        "#,
    )
    .unwrap();

    let clock = SimClock::starting_at(START);
    let store = MemFs::shared(clock.clone());
    let mut server = Server::new("bistro", config, clock.clone(), store.clone()).unwrap();
    for feed in ["SNMP/BPS", "SNMP/CPU", "SNMP/MEMORY"] {
        server.monitor_feed(feed, TimeSpan::from_mins(5), 3);
    }

    // one day of traffic from 3 pollers × 3 subfeeds at 5-minute intervals
    let mut fleet = FleetConfig::standard(
        3,
        vec![
            SubfeedSpec::standard("BPS"),
            SubfeedSpec::standard("CPU"),
            SubfeedSpec::standard("MEMORY"),
        ],
        TimeSpan::from_hours(24),
    );
    fleet.skip_prob = 0.01;
    let files = generate(&fleet);
    let total = files.len();
    let mut minute = 0;
    for f in &files {
        clock.set(f.deposit_time);
        server.deposit(&f.name, &payload_for(f)).unwrap();
        if clock.now().as_secs() / 60 > minute {
            minute = clock.now().as_secs() / 60;
            server.tick();
        }
        // periodic housekeeping mid-day
        if server.receipts().live_count().is_multiple_of(500) {
            server.snapshot().unwrap();
        }
    }
    server.tick();

    // everything classified and delivered (warehouse gets all, monitor CPU only)
    assert_eq!(server.stats().files_ingested as usize, total);
    assert_eq!(server.stats().files_unknown, 0);
    let cpu_files = server.receipts().files_in_feed("SNMP/CPU").len();
    assert_eq!(
        server.stats().deliveries as usize,
        total + cpu_files,
        "warehouse all + monitor cpu"
    );

    // CPU staged files are sealed compressed containers
    let one_cpu = &server.receipts().files_in_feed("SNMP/CPU")[0];
    let staged = store
        .read(&format!("staging/{}", one_cpu.staged_path))
        .unwrap();
    assert!(container::is_container(&staged));
    assert!(container::open(&staged).is_ok());

    // MEMORY staged files landed in hour-structured directories
    let mem = &server.receipts().files_in_feed("SNMP/MEMORY")[0];
    assert!(
        mem.staged_path.starts_with("SNMP/MEMORY/2010/09/25/"),
        "{}",
        mem.staged_path
    );

    // batch triggers fired (count=3 per polling round, 3 feeds × 288 rounds)
    let triggers = server.trigger_log().len();
    assert!(
        triggers > 500,
        "expected many batch triggers, got {triggers}"
    );

    // skipped intervals produced missing-data alarms
    assert!(server.event_log().count(bistro::server::LogLevel::Alarm) > 0);

    // expire the first half of the day into the archive
    clock.set(START + TimeSpan::from_hours(26));
    let expired = server.expire().unwrap();
    assert!(expired > total / 3, "expired {expired} of {total}");
    assert_eq!(
        server.archiver().unwrap().archived_files().unwrap().len(),
        expired
    );
    assert_eq!(server.receipts().live_count(), total - expired);

    // archived payloads are retrievable
    let archived = server.archiver().unwrap().archived_files().unwrap();
    let payload = server
        .archiver()
        .unwrap()
        .fetch(&archived[0].staged_path)
        .unwrap();
    assert!(!payload.is_empty());

    // a snapshot now bounds recovery: reopen and verify state survives
    server.snapshot().unwrap();
    drop(server);
    let config2 = parse_config(
        r#"
        server { retention 12h; archive on; }
        feed SNMP/BPS    { pattern "BPS_poller%i_%Y%m%d%H%M.csv"; }
        feed SNMP/CPU    { pattern "CPU_poller%i_%Y%m%d%H%M.csv"; compress lzss; }
        feed SNMP/MEMORY { pattern "MEMORY_poller%i_%Y%m%d%H%M.csv"; normalize "%Y/%m/%d/%H/%f"; }
        subscriber warehouse { endpoint "wh"; subscribe SNMP; }
        subscriber monitor_app { endpoint "mon"; subscribe SNMP/CPU; }
        "#,
    )
    .unwrap();
    let server2 = Server::new("bistro", config2, clock.clone(), store).unwrap();
    assert_eq!(server2.receipts().live_count(), total - expired);
    // nothing pending: all deliveries were receipted before the restart
    assert!(server2
        .receipts()
        .pending_for(
            "warehouse",
            &["SNMP/BPS".into(), "SNMP/CPU".into(), "SNMP/MEMORY".into()]
        )
        .is_empty());
}

#[test]
fn compression_roundtrip_through_delivery() {
    // a subscriber that receives compressed staging data can open it
    let config = parse_config(
        r#"
        feed LOGS { pattern "log_%i.txt"; compress lzss; }
        subscriber s { endpoint "s"; subscribe LOGS; }
        "#,
    )
    .unwrap();
    let clock = SimClock::starting_at(START);
    let store = MemFs::shared(clock.clone());
    let mut server = Server::new("b", config, clock, store.clone()).unwrap();

    let body = b"repetitive log line\n".repeat(100);
    server.deposit("log_1.txt", &body).unwrap();

    let rec = &server.receipts().files_in_feed("LOGS")[0];
    let staged = store.read(&format!("staging/{}", rec.staged_path)).unwrap();
    assert!(staged.len() < body.len(), "compressed on staging");
    assert_eq!(container::open(&staged).unwrap(), body);
}
