//! Equivalence suite for the inverted delivery index (DESIGN.md §12.5).
//!
//! The index is a pure rewrite of the per-deposit subscriber/plan scan:
//! for any subscriber population, group layout, and churn history, the
//! indexed match must return exactly what the brute-force scan returns,
//! and every observable output — receipts, trigger log, `status --json`
//! bytes, raw WAL segment bytes — must be byte-identical whether
//! deposits match through the index or the scan.
//!
//! Two angles:
//! * a seeded property test churns a random server (register,
//!   deregister, online/offline flips, random group layouts, deposits)
//!   and checks index == scan plus endpoint-resolution == scan after
//!   every mutation;
//! * a deterministic scenario drives the same deposit/churn script with
//!   the index on and off and compares all four observable surfaces
//!   byte for byte.

use bistro::base::prop::{Runner, Shrink};
use bistro::base::{prop_assert_eq, SimClock, TimePoint, TimeSpan};
use bistro::config::{parse_config, BatchSpec, DeliveryMode, SubscriberDef};
use bistro::server::{Server, ServerError};
use bistro::transport::{LinkSpec, SimNetwork};
use bistro::vfs::{walk_files, MemFs};
use std::collections::HashMap;
use std::sync::Arc;

const START: TimePoint = TimePoint::from_secs(1_285_372_800);

/// Feed letters, subscription targets and the files that hit each feed.
const FEEDS: [&str; 5] = ["F/A", "F/B", "F/C", "G/D", "G/E"];
const TARGETS: [&str; 7] = ["F", "G", "F/A", "F/B", "F/C", "G/D", "G/E"];
const ENDPOINTS: [&str; 4] = ["e0", "e1", "e2", "e3"];

fn base_config(n_subs: usize, sub_target: &[usize], sub_endpoint: &[usize], group: bool) -> String {
    let mut cfg = String::from(
        r#"
        feed F/A { pattern "A_%i_%Y%m%d.log"; }
        feed F/B { pattern "B_%i_%Y%m%d.log"; }
        feed F/C { pattern "C_%i_%Y%m%d.log"; }
        feed G/D { pattern "D_%i_%Y%m%d.log"; }
        feed G/E { pattern "E_%i_%Y%m%d.log"; }
        "#,
    );
    for i in 0..n_subs {
        cfg.push_str(&format!(
            "subscriber s{i} {{ endpoint \"{}\"; subscribe {}; }}\n",
            ENDPOINTS[sub_endpoint[i] % ENDPOINTS.len()],
            TARGETS[sub_target[i] % TARGETS.len()],
        ));
    }
    if group && n_subs >= 2 {
        cfg.push_str("group RG { members s0, s1; relay \"relayep\"; }\n");
    }
    cfg
}

fn subdef(name: &str, target: usize, endpoint: usize) -> SubscriberDef {
    SubscriberDef {
        name: name.to_string(),
        endpoint: ENDPOINTS[endpoint % ENDPOINTS.len()].to_string(),
        subscriptions: vec![TARGETS[target % TARGETS.len()].to_string()],
        delivery: DeliveryMode::Push,
        deadline: TimeSpan::from_secs(60),
        batch: BatchSpec::per_file(),
        trigger: None,
        dest: None,
    }
}

/// Endpoint-resolution oracle: the lexicographically-first configured
/// subscriber name on the endpoint, straight from the config — exactly
/// the scan `subscriber_by_endpoint` used to run per ack.
fn endpoint_oracle(server: &Server, endpoint: &str) -> Option<String> {
    let mut names: Vec<&String> = server
        .config()
        .subscribers
        .iter()
        .filter(|d| d.endpoint == endpoint)
        .map(|d| &d.name)
        .collect();
    names.sort();
    names.first().map(|s| s.to_string())
}

/// The queries every checkpoint compares: each single feed plus
/// multi-feed unions (a file can classify into several feeds).
fn queries() -> Vec<Vec<String>> {
    let mut qs: Vec<Vec<String>> = FEEDS.iter().map(|f| vec![f.to_string()]).collect();
    qs.push(vec!["F/A".to_string(), "G/D".to_string()]);
    qs.push(vec![
        "F/B".to_string(),
        "F/C".to_string(),
        "G/E".to_string(),
    ]);
    qs.push(vec!["NO/SUCH".to_string()]);
    qs
}

/// One churn operation, pre-resolved to numbers so the generator stays
/// a pure data producer.
#[derive(Debug, Clone)]
enum Op {
    Add { target: usize, endpoint: usize },
    Remove { pick: usize },
    Flip { pick: usize, online: bool },
    Deposit { feed: usize, serial: usize },
}

// ops shrink by Vec element removal; an individual op is atomic
impl Shrink for Op {}

#[test]
fn index_equals_scan_under_churn() {
    Runner::new("index_equals_scan_under_churn").cases(24).run(
        |rng| {
            let n_subs = rng.gen_range(2u64..6) as usize;
            let sub_target: Vec<usize> = (0..n_subs)
                .map(|_| rng.gen_range(0u64..99) as usize)
                .collect();
            let sub_endpoint: Vec<usize> = (0..n_subs)
                .map(|_| rng.gen_range(0u64..99) as usize)
                .collect();
            let group = rng.gen_range(0u64..2) == 1;
            let n_ops = rng.gen_range(10u64..40) as usize;
            let ops: Vec<Op> = (0..n_ops)
                .map(|k| match rng.gen_range(0u32..5) {
                    0 => Op::Add {
                        target: rng.gen_range(0u64..99) as usize,
                        endpoint: rng.gen_range(0u64..99) as usize,
                    },
                    1 => Op::Remove {
                        pick: rng.gen_range(0u64..99) as usize,
                    },
                    2 | 3 => Op::Flip {
                        pick: rng.gen_range(0u64..99) as usize,
                        online: rng.gen_range(0u64..2) == 1,
                    },
                    _ => Op::Deposit {
                        feed: rng.gen_range(0u64..FEEDS.len() as u64) as usize,
                        serial: k,
                    },
                })
                .collect();
            (n_subs, sub_target, sub_endpoint, group, ops)
        },
        |(n_subs, sub_target, sub_endpoint, group, ops)| {
            let clock = SimClock::starting_at(START);
            let store = MemFs::shared(clock.clone());
            let net = Arc::new(SimNetwork::new(LinkSpec::default()));
            let cfg = parse_config(&base_config(*n_subs, sub_target, sub_endpoint, *group))
                .expect("generated config parses");
            let mut server = Server::new("b", cfg, clock.clone(), store)
                .unwrap()
                .with_network(net);

            // driver-side mirror of who exists and who is online, so the
            // posting-count invariant can be recomputed independently
            let mut online: HashMap<String, bool> =
                (0..*n_subs).map(|i| (format!("s{i}"), true)).collect();
            let mut next_add = 0usize;

            let check = |server: &Server| {
                for q in queries() {
                    prop_assert_eq!(
                        server.match_via_index(&q),
                        server.match_via_scan(&q),
                        "index != scan for query {:?}",
                        q
                    );
                }
                for ep in ENDPOINTS.iter().chain(["relayep", "ghost"].iter()) {
                    prop_assert_eq!(
                        server.resolve_endpoint(ep),
                        endpoint_oracle(server, ep),
                        "endpoint resolution != scan for {}",
                        ep
                    );
                }
                Ok(())
            };
            check(&server)?;

            for op in ops {
                match op {
                    Op::Add { target, endpoint } => {
                        let name = format!("n{next_add}");
                        next_add += 1;
                        server
                            .add_subscriber(subdef(&name, *target, *endpoint))
                            .unwrap();
                        online.insert(name, true);
                    }
                    Op::Remove { pick } => {
                        let mut names: Vec<&String> = online.keys().collect();
                        if names.is_empty() {
                            continue;
                        }
                        names.sort();
                        let name = names[pick % names.len()].clone();
                        match server.remove_subscriber(&name) {
                            Ok(()) => {
                                online.remove(&name);
                            }
                            // grouped members are refused and must stay
                            Err(ServerError::GroupedSubscriber(_)) => {}
                            Err(e) => panic!("unexpected remove error: {e}"),
                        }
                    }
                    Op::Flip { pick, online: to } => {
                        let mut names: Vec<&String> = online.keys().collect();
                        if names.is_empty() {
                            continue;
                        }
                        names.sort();
                        let name = names[pick % names.len()].clone();
                        server.set_subscriber_online(&name, *to).unwrap();
                        online.insert(name, *to);
                    }
                    Op::Deposit { feed, serial } => {
                        let letter = FEEDS[*feed].rsplit('/').next().unwrap();
                        server
                            .deposit(&format!("{letter}_{serial}_20100925.log"), b"x")
                            .unwrap();
                    }
                }
                check(&server)?;
            }

            // nothing leaked: recompute both posting counts from the
            // config and the driver's own online mirror
            let expected_endpoint: usize = server.config().subscribers.len();
            let expected_feed: usize = server
                .config()
                .subscribers
                .iter()
                .filter(|d| online[&d.name])
                .filter(|d| {
                    !(*group
                        && server
                            .config()
                            .groups
                            .iter()
                            .any(|g| g.relay.is_some() && g.members.contains(&d.name)))
                })
                .map(|d| server.config().subscriber_feeds(&d.name).unwrap().len())
                .sum();
            prop_assert_eq!(
                server.index_entry_counts(),
                (expected_feed, expected_endpoint),
                "index postings diverge from recomputation"
            );
            Ok(())
        },
    );
}

/// Hex dump of every WAL segment under `receipts/` — the physical
/// byte-identity surface.
fn wal_dump(server: &Server) -> String {
    let store = server.store();
    let mut out = String::new();
    for path in walk_files(store.as_ref(), "receipts").unwrap() {
        let data = store.read(&path).unwrap();
        out.push_str(&path);
        out.push(':');
        for b in data {
            out.push_str(&format!("{b:02x}"));
        }
        out.push(';');
    }
    out
}

/// Drive a fixed deposit/churn script and return every observable
/// surface. `use_index` selects the match implementation; nothing else
/// differs between runs.
fn drive(use_index: bool) -> (String, usize, String, String) {
    let clock = SimClock::starting_at(START);
    let store = MemFs::shared(clock.clone());
    let net = Arc::new(SimNetwork::new(LinkSpec::default()));
    let cfg = parse_config(
        r#"
        feed F/A { pattern "A_%i_%Y%m%d.log"; }
        feed F/B { pattern "B_%i_%Y%m%d.log"; }
        feed G/D { pattern "D_%i_%Y%m%d.log"; }
        subscriber s0 {
            endpoint "e0";
            subscribe F;
            batch count 3 window 10m;
            trigger remote "refresh %N n=%c";
        }
        subscriber s1 { endpoint "e1"; subscribe F/A; }
        subscriber s2 { endpoint "e1"; subscribe G; }
        subscriber m0 { endpoint "m0"; subscribe F; }
        subscriber m1 { endpoint "m1"; subscribe G/D; }
        group RG { members m0, m1; relay "relayep"; }
        "#,
    )
    .unwrap();
    let mut server = Server::new("b", cfg, clock.clone(), store)
        .unwrap()
        .with_network(net);
    server.set_use_index(use_index);

    for round in 0..6usize {
        server
            .deposit(&format!("A_{round}_20100925.log"), b"aa")
            .unwrap();
        server
            .deposit(&format!("D_{round}_20100925.log"), b"dd")
            .unwrap();
        match round {
            1 => {
                server.add_subscriber(subdef("late", 0, 2)).unwrap();
            }
            2 => {
                server.set_subscriber_online("s1", false).unwrap();
            }
            3 => {
                server.remove_subscriber("s2").unwrap();
            }
            4 => {
                server.set_subscriber_online("s1", true).unwrap();
            }
            _ => {}
        }
        clock.advance(TimeSpan::from_secs(30));
        server.tick();
    }

    let receipts: Vec<String> = server
        .receipts()
        .all_live()
        .iter()
        .map(|r| format!("{}#{}→{:?}", r.name, r.id.raw(), r.feeds))
        .collect();
    (
        receipts.join(";"),
        server.trigger_log().len(),
        server.status_json().render(),
        wal_dump(&server),
    )
}

#[test]
fn index_and_scan_paths_are_byte_identical() {
    let indexed = drive(true);
    let scanned = drive(false);
    assert_eq!(indexed.0, scanned.0, "receipt records diverge");
    assert_eq!(indexed.1, scanned.1, "trigger log diverges");
    assert_eq!(indexed.2, scanned.2, "status --json bytes diverge");
    assert_eq!(indexed.3, scanned.3, "WAL bytes diverge");
}
