//! Workspace-level integration: a three-tier Bistro relay network
//! (paper §3: "organizing Bistro servers into a network of cooperating
//! feed managers").

use bistro::base::{Clock, SimClock, TimePoint, TimeSpan};
use bistro::config::parse_config;
use bistro::server::relay::pump;
use bistro::server::Server;
use bistro::transport::{LinkSpec, SimNetwork};
use bistro::vfs::MemFs;
use std::sync::Arc;

const START: TimePoint = TimePoint::from_secs(1_285_372_800);

fn server(
    name: &str,
    cfg: &str,
    clock: Arc<bistro::base::clock::SimClock>,
    net: Arc<SimNetwork>,
) -> Server {
    Server::new(
        name,
        parse_config(cfg).unwrap(),
        clock.clone(),
        MemFs::shared(clock),
    )
    .unwrap()
    .with_network(net)
}

#[test]
fn three_tier_relay_chain() {
    let clock = SimClock::starting_at(START);
    let net = Arc::new(SimNetwork::new(LinkSpec {
        bandwidth: 50_000_000,
        latency: TimeSpan::from_millis(10),
    }));

    // tier 1: collector near the sources, relays everything to tier 2
    let mut collector = server(
        "collector",
        r#"
        feed SNMP/MEMORY { pattern "MEMORY_poller%i_%Y%m%d%H%M.csv"; }
        feed SNMP/CPU { pattern "CPU_poller%i_%Y%m%d%H%M.csv"; }
        subscriber regional { endpoint "regional"; subscribe SNMP; delivery push; }
        "#,
        clock.clone(),
        net.clone(),
    );

    // tier 2: regional hub, relays only MEMORY onward
    let mut regional = server(
        "regional",
        r#"
        feed SNMP/MEMORY { pattern "MEMORY_poller%i_%Y%m%d%H%M.csv"; }
        feed SNMP/CPU { pattern "CPU_poller%i_%Y%m%d%H%M.csv"; }
        subscriber edge { endpoint "edge"; subscribe SNMP/MEMORY; delivery push; }
        "#,
        clock.clone(),
        net.clone(),
    );

    // tier 3: edge server delivering to the analyst
    let mut edge = server(
        "edge",
        r#"
        feed SNMP/MEMORY { pattern "MEMORY_poller%i_%Y%m%d%H%M.csv"; }
        subscriber analyst { endpoint "analyst"; subscribe SNMP/MEMORY; delivery push; }
        "#,
        clock.clone(),
        net.clone(),
    );

    // a polling round lands at the collector
    for p in 1..=4 {
        collector
            .deposit(&format!("MEMORY_poller{p}_201009250000.csv"), b"mem")
            .unwrap();
        collector
            .deposit(&format!("CPU_poller{p}_201009250000.csv"), b"cpu")
            .unwrap();
    }

    // pump each hop in turn
    clock.advance(TimeSpan::from_secs(2));
    let hop1 = pump(&net, &collector, &mut regional, clock.now()).unwrap();
    assert_eq!(hop1, 8, "regional subscribes to everything");

    clock.advance(TimeSpan::from_secs(2));
    let hop2 = pump(&net, &regional, &mut edge, clock.now()).unwrap();
    assert_eq!(hop2, 4, "edge subscribes to MEMORY only");

    clock.advance(TimeSpan::from_secs(2));
    let final_msgs = net.recv_ready("analyst", clock.now());
    assert_eq!(final_msgs.len(), 4);

    // end-to-end latency across three tiers is seconds, not minutes
    let worst = final_msgs.iter().map(|d| d.at.since(START)).max().unwrap();
    assert!(worst < TimeSpan::from_secs(60), "3-hop latency {worst}");

    // receipts are consistent at every tier
    assert_eq!(collector.receipts().live_count(), 8);
    assert_eq!(regional.receipts().live_count(), 8);
    assert_eq!(edge.receipts().live_count(), 4);
    assert_eq!(edge.stats().deliveries, 4);
}

#[test]
fn relay_survives_downstream_outage() {
    let clock = SimClock::starting_at(START);
    let net = Arc::new(SimNetwork::new(LinkSpec::default()));

    let mut hub = server(
        "hub",
        r#"
        feed F { pattern "f_%i.csv"; }
        subscriber edge { endpoint "edge"; subscribe F; delivery push; }
        "#,
        clock.clone(),
        net.clone(),
    );
    let mut edge = server(
        "edge",
        r#"
        feed F { pattern "f_%i.csv"; }
        subscriber app { endpoint "app"; subscribe F; delivery push; }
        "#,
        clock.clone(),
        net.clone(),
    );

    // edge goes down (from the hub's perspective)
    hub.set_subscriber_online("edge", false).unwrap();
    for i in 0..5 {
        hub.deposit(&format!("f_{i}.csv"), b"x").unwrap();
    }
    clock.advance(TimeSpan::from_secs(5));
    assert_eq!(pump(&net, &hub, &mut edge, clock.now()).unwrap(), 0);

    // recovery: hub backfills, relay pumps everything through
    hub.set_subscriber_online("edge", true).unwrap();
    clock.advance(TimeSpan::from_secs(5));
    assert_eq!(pump(&net, &hub, &mut edge, clock.now()).unwrap(), 5);
    clock.advance(TimeSpan::from_secs(5));
    assert_eq!(net.recv_ready("app", clock.now()).len(), 5);
}
