//! Workspace-level integration: a three-tier Bistro relay network
//! (paper §3: "organizing Bistro servers into a network of cooperating
//! feed managers").

use bistro::base::{Clock, SimClock, TimePoint, TimeSpan};
use bistro::config::parse_config;
use bistro::server::relay::pump;
use bistro::server::Server;
use bistro::transport::{LinkSpec, SimNetwork};
use bistro::vfs::MemFs;
use std::sync::Arc;

const START: TimePoint = TimePoint::from_secs(1_285_372_800);

fn server(
    name: &str,
    cfg: &str,
    clock: Arc<bistro::base::clock::SimClock>,
    net: Arc<SimNetwork>,
) -> Server {
    Server::new(
        name,
        parse_config(cfg).unwrap(),
        clock.clone(),
        MemFs::shared(clock),
    )
    .unwrap()
    .with_network(net)
}

#[test]
fn three_tier_relay_chain() {
    let clock = SimClock::starting_at(START);
    let net = Arc::new(SimNetwork::new(LinkSpec {
        bandwidth: 50_000_000,
        latency: TimeSpan::from_millis(10),
    }));

    // tier 1: collector near the sources, relays everything to tier 2
    let mut collector = server(
        "collector",
        r#"
        feed SNMP/MEMORY { pattern "MEMORY_poller%i_%Y%m%d%H%M.csv"; }
        feed SNMP/CPU { pattern "CPU_poller%i_%Y%m%d%H%M.csv"; }
        subscriber regional { endpoint "regional"; subscribe SNMP; delivery push; }
        "#,
        clock.clone(),
        net.clone(),
    );

    // tier 2: regional hub, relays only MEMORY onward
    let mut regional = server(
        "regional",
        r#"
        feed SNMP/MEMORY { pattern "MEMORY_poller%i_%Y%m%d%H%M.csv"; }
        feed SNMP/CPU { pattern "CPU_poller%i_%Y%m%d%H%M.csv"; }
        subscriber edge { endpoint "edge"; subscribe SNMP/MEMORY; delivery push; }
        "#,
        clock.clone(),
        net.clone(),
    );

    // tier 3: edge server delivering to the analyst
    let mut edge = server(
        "edge",
        r#"
        feed SNMP/MEMORY { pattern "MEMORY_poller%i_%Y%m%d%H%M.csv"; }
        subscriber analyst { endpoint "analyst"; subscribe SNMP/MEMORY; delivery push; }
        "#,
        clock.clone(),
        net.clone(),
    );

    // a polling round lands at the collector
    for p in 1..=4 {
        collector
            .deposit(&format!("MEMORY_poller{p}_201009250000.csv"), b"mem")
            .unwrap();
        collector
            .deposit(&format!("CPU_poller{p}_201009250000.csv"), b"cpu")
            .unwrap();
    }

    // pump each hop in turn
    clock.advance(TimeSpan::from_secs(2));
    let hop1 = pump(&net, &collector, &mut regional, clock.now()).unwrap();
    assert_eq!(hop1, 8, "regional subscribes to everything");

    clock.advance(TimeSpan::from_secs(2));
    let hop2 = pump(&net, &regional, &mut edge, clock.now()).unwrap();
    assert_eq!(hop2, 4, "edge subscribes to MEMORY only");

    clock.advance(TimeSpan::from_secs(2));
    let final_msgs = net.recv_ready("analyst", clock.now());
    assert_eq!(final_msgs.len(), 4);

    // end-to-end latency across three tiers is seconds, not minutes
    let worst = final_msgs.iter().map(|d| d.at.since(START)).max().unwrap();
    assert!(worst < TimeSpan::from_secs(60), "3-hop latency {worst}");

    // receipts are consistent at every tier
    assert_eq!(collector.receipts().live_count(), 8);
    assert_eq!(regional.receipts().live_count(), 8);
    assert_eq!(edge.receipts().live_count(), 4);
    assert_eq!(edge.stats().deliveries, 4);
}

#[test]
fn relay_survives_downstream_outage() {
    let clock = SimClock::starting_at(START);
    let net = Arc::new(SimNetwork::new(LinkSpec::default()));

    let mut hub = server(
        "hub",
        r#"
        feed F { pattern "f_%i.csv"; }
        subscriber edge { endpoint "edge"; subscribe F; delivery push; }
        "#,
        clock.clone(),
        net.clone(),
    );
    let mut edge = server(
        "edge",
        r#"
        feed F { pattern "f_%i.csv"; }
        subscriber app { endpoint "app"; subscribe F; delivery push; }
        "#,
        clock.clone(),
        net.clone(),
    );

    // edge goes down (from the hub's perspective)
    hub.set_subscriber_online("edge", false).unwrap();
    for i in 0..5 {
        hub.deposit(&format!("f_{i}.csv"), b"x").unwrap();
    }
    clock.advance(TimeSpan::from_secs(5));
    assert_eq!(pump(&net, &hub, &mut edge, clock.now()).unwrap(), 0);

    // recovery: hub backfills, relay pumps everything through
    hub.set_subscriber_online("edge", true).unwrap();
    clock.advance(TimeSpan::from_secs(5));
    assert_eq!(pump(&net, &hub, &mut edge, clock.now()).unwrap(), 5);
    clock.advance(TimeSpan::from_secs(5));
    assert_eq!(net.recv_ready("app", clock.now()).len(), 5);
}

// ---------------------------------------------------------------------------
// Multi-server partitioned feeds with failover (the cluster layer).
//
// A seeded end-to-end scenario: feed groups partitioned across three
// servers, per-feed failover policy replicating every deposit to a
// standby, the home killed mid-trace, heartbeat silence promoting the
// standby, the subscriber re-homed and backfilled from the failed
// home's durable receipt store. Exactly-once is proven at the wire
// level (per-server `delivery.receipts` counters) and the whole run is
// bit-for-bit replayable from the seed.
// ---------------------------------------------------------------------------

use bistro::server::cluster::Cluster;
use bistro::simnet::{generate, partitioned_config, partitioned_fleet};

const FAILOVER_SEED: u64 = 0xB157_0007;

struct FailoverOutcome {
    /// Rendered `Cluster::status_json` — the determinism surface.
    digest: String,
    /// Wire deliveries to `wh` by the original home before the kill.
    delivered_before: u64,
    /// Wire deliveries to `wh` by the promoted standby.
    delivered_after: u64,
    /// Distinct ALPHA files in the trace.
    alpha_total: usize,
    /// Unique (file, subscriber) receipts for `wh` at the new home.
    marks_at_new_home: usize,
    /// Receipts backfill-marked (delivered pre-kill, not re-sent).
    backfill_marked: u64,
    /// Wire deliveries of BETA files to `cap` at its (undisturbed) home.
    beta_delivered: usize,
    failovers: u64,
    rehomed: u64,
}

fn unique_deliveries(server: &bistro::server::Server, sub: &str) -> usize {
    server
        .receipts()
        .deliveries_since(0)
        .iter()
        .filter(|m| m.subscriber == sub)
        .count()
}

fn run_failover(seed: u64) -> FailoverOutcome {
    let clock = SimClock::starting_at(START);
    let net = Arc::new(SimNetwork::new(LinkSpec {
        bandwidth: 10_000_000,
        latency: TimeSpan::from_millis(5),
    }));

    // ALPHA and BETA groups, both under failover policy
    let cfg_src = partitioned_config(&[("ALPHA", "failover"), ("BETA", "failover")], 2);
    let fleet = partitioned_fleet(&["ALPHA", "BETA"], 2, 2, TimeSpan::from_mins(40), seed);
    let trace = generate(&fleet);
    assert!(!trace.is_empty());

    let mut cluster = Cluster::new(
        parse_config(&cfg_src).unwrap(),
        net.clone(),
        TimeSpan::from_secs(1),
        TimeSpan::from_secs(5),
    );
    for name in ["s1", "s2", "s3"] {
        cluster
            .add_server(server(name, &cfg_src, clock.clone(), net.clone()))
            .unwrap();
    }
    cluster.assign("ALPHA", "s1", &["s2"]).unwrap();
    cluster.assign("BETA", "s3", &["s2"]).unwrap();

    let wh = bistro::config::SubscriberDef {
        name: "wh".into(),
        endpoint: "wh:7070".into(),
        subscriptions: vec!["ALPHA".into()],
        delivery: bistro::config::DeliveryMode::Push,
        deadline: TimeSpan::from_secs(60),
        batch: bistro::config::BatchSpec::default(),
        trigger: None,
        dest: None,
    };
    let mut cap = wh.clone();
    cap.name = "cap".into();
    cap.endpoint = "cap:7070".into();
    cap.subscriptions = vec!["BETA".into()];
    cluster.register_subscriber(&wh).unwrap();
    cluster.register_subscriber(&cap).unwrap();

    // kill the ALPHA home when half the trace has landed
    let kill_at = trace[trace.len() / 2].deposit_time;
    let end = trace.last().unwrap().deposit_time + TimeSpan::from_secs(60);

    let mut i = 0;
    let mut killed = false;
    let mut delivered_before = 0;
    while clock.now() < end {
        clock.advance(TimeSpan::from_secs(1));
        let now = clock.now();
        if !killed && now >= kill_at {
            delivered_before = cluster
                .server("s1")
                .unwrap()
                .telemetry()
                .counter_value("delivery.receipts")
                .unwrap_or(0);
            cluster.kill("s1").unwrap();
            killed = true;
        }
        while i < trace.len() && trace[i].deposit_time <= now {
            cluster
                .route_deposit(&trace[i].name, trace[i].name.as_bytes(), now)
                .unwrap();
            i += 1;
        }
        cluster.tick(now).unwrap();
        cluster.pump(now).unwrap();
    }
    assert_eq!(i, trace.len(), "whole trace deposited");

    let alpha_total = trace
        .iter()
        .filter(|f| f.name.starts_with("ALPHA_"))
        .count();
    let beta_total = trace.iter().filter(|f| f.name.starts_with("BETA_")).count();
    let reg = cluster.telemetry().clone();
    let s2 = cluster.server("s2").unwrap();
    let outcome = FailoverOutcome {
        digest: cluster.status_json().render(),
        delivered_before,
        delivered_after: s2
            .telemetry()
            .counter_value("delivery.receipts")
            .unwrap_or(0),
        alpha_total,
        marks_at_new_home: unique_deliveries(s2, "wh"),
        backfill_marked: reg.counter_value("cluster.backfill_marked").unwrap_or(0),
        beta_delivered: unique_deliveries(cluster.server("s3").unwrap(), "cap"),
        failovers: reg.counter_value("cluster.failovers").unwrap_or(0),
        rehomed: reg
            .counter_value("cluster.rehomed_subscribers")
            .unwrap_or(0),
    };
    assert_eq!(outcome.beta_delivered, beta_total, "BETA home undisturbed");
    outcome
}

#[test]
fn seeded_failover_rehome_backfill_is_exactly_once() {
    // uncaptured CI runs echo this so a failure is replayable
    eprintln!("[distributed] failover scenario seed={FAILOVER_SEED:#x}");
    let o = run_failover(FAILOVER_SEED);

    assert_eq!(o.failovers, 1, "exactly one group failed over");
    assert_eq!(o.rehomed, 1, "wh re-homed once");
    assert!(o.delivered_before > 0, "home delivered before the kill");

    // exactly-once at the wire: what s1 delivered before the kill plus
    // what s2 delivered after re-homing covers every ALPHA file with no
    // overlap — the backfill marked (not re-sent) s1's deliveries
    assert_eq!(o.backfill_marked, o.delivered_before);
    assert_eq!(
        o.delivered_before + o.delivered_after,
        o.alpha_total as u64,
        "every ALPHA file delivered exactly once across the failover"
    );
    // and the receipt database at the new home closes the books
    assert_eq!(o.marks_at_new_home, o.alpha_total);
}

#[test]
fn failover_replays_bit_for_bit_from_the_seed() {
    let a = run_failover(FAILOVER_SEED);
    let b = run_failover(FAILOVER_SEED);
    assert_eq!(a.digest, b.digest, "same seed, same status --json");
    assert_eq!(a.delivered_before, b.delivered_before);
    assert_eq!(a.delivered_after, b.delivered_after);
}
