//! Storage crash-point sweep (DESIGN.md "Storage failure model").
//!
//! A [`FaultStore`] wraps the server's store and simulates power loss at
//! one mutating-operation index: the in-flight write is torn at a seeded
//! byte offset and every later operation fails. The sweep runs the full
//! pipeline — deposit → classify/normalize → deliver/ack → expire/archive
//! → snapshot → persist_config → group-committed batch deposit —
//! crashing at *every* storage-op index in turn, then reopens on the
//! surviving bytes and asserts:
//!
//! * the store always opens (no crash point can brick recovery),
//! * no live receipt references a missing staged payload,
//! * no acked delivery is forgotten, and exactly-once delivery holds
//!   after `backfill_unacked`,
//! * no `FileId` is ever reused across incarnations.
//!
//! Every panic message embeds `seed=… crash_op=…`; rerunning the sweep
//! with those two numbers replays the failure bit-for-bit.

use bistro::base::{crc32, Clock, SimClock, TimePoint, TimeSpan};
use bistro::config::parse_config;
use bistro::server::{Server, ServerError};
use bistro::transport::{LinkSpec, RetryPolicy, SimNetwork, SubscriberClient};
use bistro::vfs::{walk_files, FaultStore, FileStore, MemFs};
use std::collections::BTreeSet;
use std::sync::Arc;

const START: TimePoint = TimePoint::from_secs(1_285_372_800);
const SEED: u64 = 0xB157_0C7A;

const CONFIG: &str = r#"
    server { retention 1h; archive on; }
    feed F { pattern "f_%i.csv"; }
    subscriber alpha { endpoint "alpha"; subscribe F; delivery push; }
    subscriber beta  { endpoint "beta";  subscribe F; delivery push; }
"#;

fn retry_policy() -> RetryPolicy {
    RetryPolicy {
        base_timeout: TimeSpan::from_secs(2),
        backoff: 2,
        max_timeout: TimeSpan::from_secs(16),
        max_attempts: 10,
        jitter: 0.1,
    }
}

fn payload(i: usize) -> Vec<u8> {
    format!("payload-{i}-0123456789abcdefghij").into_bytes()
}

/// Advance time and drain the network: subscribers poll + ack, the
/// server processes acks and retries. Errors (the crash) propagate.
fn pump(
    server: &mut Server,
    clients: &mut [&mut SubscriberClient],
    net: &SimNetwork,
    clock: &Arc<SimClock>,
    rounds: usize,
) -> Result<(), ServerError> {
    for _ in 0..rounds {
        clock.advance(TimeSpan::from_secs(1));
        let now = clock.now();
        for c in clients.iter_mut() {
            c.poll_notifications(net, now);
        }
        server.poll_network()?;
        server.retry_tick()?;
    }
    Ok(())
}

fn note_live_ids(server: &Server, seen: &mut BTreeSet<u64>) {
    for rec in server.receipts().all_live() {
        seen.insert(rec.id.raw());
    }
}

/// Phase A: the faulted incarnation. Runs the full pipeline over the
/// wrapped store until it completes or the crash point fires.
#[allow(clippy::too_many_arguments)]
fn phase_a(
    clock: &Arc<SimClock>,
    store: Arc<dyn FileStore>,
    net: &Arc<SimNetwork>,
    config: &bistro::config::Config,
    seed: u64,
    alpha: &mut SubscriberClient,
    beta: &mut SubscriberClient,
    seen: &mut BTreeSet<u64>,
) -> Result<(), ServerError> {
    let mut server = Server::new("b", config.clone(), clock.clone(), store)?
        .with_network(net.clone())
        .with_reliable_delivery(retry_policy(), seed);
    server.persist_config()?;

    // two files that will age out of the retention window
    for i in 0..2 {
        server.deposit(&format!("f_{i}.csv"), &payload(i))?;
        pump(&mut server, &mut [alpha, beta], net, clock, 6)?;
        note_live_ids(&server, seen);
    }

    // age them past retention, land a fresh file, then expire + archive
    clock.advance(TimeSpan::from_secs(7_200));
    server.deposit("f_2.csv", &payload(2))?;
    pump(&mut server, &mut [alpha, beta], net, clock, 6)?;
    note_live_ids(&server, seen);
    server.expire()?;

    // snapshot (prunes the WAL) and persist the running config
    server.snapshot()?;
    server.persist_config()?;

    // post-snapshot arrival: must survive on WAL replay alone
    server.deposit("f_3.csv", &payload(3))?;
    pump(&mut server, &mut [alpha, beta], net, clock, 6)?;
    note_live_ids(&server, seen);

    // a batched deposit through the group-commit path: group 2 over
    // three files flushes the WAL as 2 + 1 records, so the sweep
    // crashes inside, between and after batched appends — a torn group
    // append must recover to a whole-record prefix, never a receipt
    // whose staged payload is missing
    server.set_commit_group(2);
    server.deposit_batch(
        (10..13usize)
            .map(|i| (format!("f_{i}.csv"), payload(i)))
            .collect(),
    )?;
    pump(&mut server, &mut [alpha, beta], net, clock, 6)?;
    note_live_ids(&server, seen);
    Ok(())
}

/// Count the mutating storage ops of an uncrashed end-to-end run.
fn count_ops(seed: u64) -> u64 {
    let clock = SimClock::starting_at(START);
    let inner = MemFs::shared(clock.clone());
    let faulted = Arc::new(FaultStore::counting(inner));
    let net = Arc::new(SimNetwork::new(LinkSpec::default()));
    let config = parse_config(CONFIG).unwrap();
    let mut alpha = SubscriberClient::new("alpha", "b");
    let mut beta = SubscriberClient::new("beta", "b");
    let mut seen = BTreeSet::new();
    phase_a(
        &clock,
        faulted.clone(),
        &net,
        &config,
        seed,
        &mut alpha,
        &mut beta,
        &mut seen,
    )
    .expect("uncrashed scenario must complete");
    faulted.mutation_ops()
}

/// Run the scenario crashing at `crash_op`, recover twice, verify every
/// invariant (panicking with the replay coordinates on violation), and
/// return a digest of all observable state for replay comparison.
fn run_crash_scenario(seed: u64, crash_op: u64) -> String {
    let ctx = format!("seed={seed:#x} crash_op={crash_op}");
    let clock = SimClock::starting_at(START);
    let inner = MemFs::shared(clock.clone());
    let faulted = Arc::new(FaultStore::armed(inner.clone(), seed, crash_op));
    let net = Arc::new(SimNetwork::new(LinkSpec::default()));
    let config = parse_config(CONFIG).unwrap();
    let mut alpha = SubscriberClient::new("alpha", "b");
    let mut beta = SubscriberClient::new("beta", "b");
    let mut seen: BTreeSet<u64> = BTreeSet::new();

    // ---- phase A: run until the crash point fires -------------------
    let _ = phase_a(
        &clock,
        faulted.clone(),
        &net,
        &config,
        seed,
        &mut alpha,
        &mut beta,
        &mut seen,
    );

    // ---- phase B: reopen on the surviving bytes ---------------------
    // The crashed process is gone; recovery sees only what the inner
    // store durably holds. persist_config is atomic, so bistro.conf is
    // either whole or absent (crashed before it first landed).
    let store: Arc<dyn FileStore> = inner.clone();
    let reopened = if inner.exists("bistro.conf") {
        Server::open_existing("b", clock.clone(), store)
    } else {
        Server::new("b", config.clone(), clock.clone(), store)
    };
    let mut server = match reopened {
        Ok(s) => s
            .with_network(net.clone())
            .with_reliable_delivery(retry_policy(), seed.wrapping_add(1)),
        Err(e) => panic!("{ctx}: store failed to reopen after crash: {e}"),
    };

    // invariant: no live receipt references a missing staged payload
    for rec in server.receipts().all_live() {
        let staged = format!("staging/{}", rec.staged_path);
        assert!(
            inner.exists(&staged),
            "{ctx}: live receipt {} references missing payload {staged}",
            rec.id
        );
    }
    // everything live now is durably on record
    note_live_ids(&server, &mut seen);

    // re-provision the config (heals the crashed-before-first-persist
    // case), backfill sends the receipts still show as undelivered, and
    // let the network settle
    server
        .persist_config()
        .unwrap_or_else(|e| panic!("{ctx}: persist_config: {e}"));
    server
        .backfill_unacked()
        .unwrap_or_else(|e| panic!("{ctx}: backfill_unacked: {e}"));
    pump(&mut server, &mut [&mut alpha, &mut beta], &net, &clock, 40)
        .unwrap_or_else(|e| panic!("{ctx}: settle pump: {e}"));

    // invariant: exactly-once delivery after backfill
    assert_eq!(
        server.unacked_count(),
        0,
        "{ctx}: unacked sends after settle"
    );
    for rec in server.receipts().all_live() {
        for sub in ["alpha", "beta"] {
            assert!(
                server.receipts().is_delivered(rec.id, sub),
                "{ctx}: live file {} not delivered to {sub} after backfill",
                rec.id
            );
        }
    }
    // invariant: no acked delivery is forgotten, and no file reaches a
    // subscriber twice (the client dedupes redeliveries by id)
    let live: BTreeSet<u64> = server
        .receipts()
        .all_live()
        .iter()
        .map(|r| r.id.raw())
        .collect();
    for (name, client) in [("alpha", &alpha), ("beta", &beta)] {
        let mut uniq = BTreeSet::new();
        for (fid, _, _) in client.delivered() {
            assert!(uniq.insert(fid.raw()), "{ctx}: {name} received {fid} twice");
            if live.contains(&fid.raw()) {
                assert!(
                    server.receipts().is_delivered(*fid, name),
                    "{ctx}: {name}'s acked delivery of {fid} forgotten"
                );
            }
        }
    }

    // continue the pipeline: a new arrival must get a fresh id
    server
        .deposit("f_4.csv", &payload(4))
        .unwrap_or_else(|e| panic!("{ctx}: deposit f_4: {e}"));
    pump(&mut server, &mut [&mut alpha, &mut beta], &net, &clock, 8)
        .unwrap_or_else(|e| panic!("{ctx}: pump f_4: {e}"));
    let f4 = server
        .receipts()
        .all_live()
        .iter()
        .find(|r| r.name == "f_4.csv")
        .map(|r| r.id.raw())
        .unwrap_or_else(|| panic!("{ctx}: f_4.csv not live after deposit"));
    assert!(!seen.contains(&f4), "{ctx}: id {f4} reused for f_4.csv");
    seen.insert(f4);

    // expire everything and close cleanly (no snapshot: phase C must
    // recover the tail from the WAL alone)
    clock.advance(TimeSpan::from_secs(7_200));
    server
        .expire()
        .unwrap_or_else(|e| panic!("{ctx}: expire: {e}"));
    let deliveries = server.receipts().delivery_count();
    let expired = server.receipts().expired_count();
    drop(server);

    // ---- phase C: clean reopen, ids must never come back ------------
    let mut server = Server::open_existing("b", clock.clone(), inner.clone() as Arc<dyn FileStore>)
        .unwrap_or_else(|e| panic!("{ctx}: clean reopen failed: {e}"));
    assert_eq!(
        server.receipts().live_count(),
        0,
        "{ctx}: files survived expiry"
    );
    for (i, name) in ["f_5.csv", "f_6.csv"].iter().enumerate() {
        server
            .deposit(name, &payload(5 + i))
            .unwrap_or_else(|e| panic!("{ctx}: deposit {name}: {e}"));
        let id = server
            .receipts()
            .all_live()
            .iter()
            .find(|r| r.name == *name)
            .map(|r| r.id.raw())
            .unwrap_or_else(|| panic!("{ctx}: {name} not live after deposit"));
        assert!(seen.insert(id), "{ctx}: id {id} reused for {name}");
    }

    // ---- digest of everything observable ----------------------------
    let mut digest = String::new();
    digest.push_str(&format!("crashed={} seen={seen:?}\n", faulted.crashed()));
    for path in walk_files(inner.as_ref(), "").unwrap() {
        let data = inner.read(&path).unwrap();
        digest.push_str(&format!("{path}:{}:{:08x}\n", data.len(), crc32(&data)));
    }
    digest.push_str(&format!(
        "live={} expired={expired} deliveries={deliveries} alpha={}/{} beta={}/{}\n",
        server.receipts().live_count(),
        alpha.delivered().len(),
        alpha.duplicates_ignored(),
        beta.delivered().len(),
        beta.duplicates_ignored(),
    ));
    digest
}

#[test]
fn sweep_crash_at_every_storage_op() {
    let total = count_ops(SEED);
    assert!(
        total > 40,
        "scenario too small to be interesting: {total} ops"
    );
    println!("crash-point sweep: {total} storage ops, seed {SEED:#x}");
    for crash_op in 0..total {
        run_crash_scenario(SEED, crash_op);
    }
}

#[test]
fn sweep_is_bit_for_bit_replayable() {
    let total = count_ops(SEED);
    for crash_op in [1, total / 4, total / 2, 3 * total / 4, total - 1] {
        let a = run_crash_scenario(SEED, crash_op);
        let b = run_crash_scenario(SEED, crash_op);
        assert_eq!(a, b, "seed={SEED:#x} crash_op={crash_op} did not replay");
    }
    // a different seed tears at different offsets but replays all the same
    let a = run_crash_scenario(SEED ^ 0xFF, total / 3);
    let b = run_crash_scenario(SEED ^ 0xFF, total / 3);
    assert_eq!(a, b);
}

#[test]
fn expire_tolerates_already_missing_payload() {
    // the leftover of a crash between the expiration receipt and the
    // payload delete is a harmless orphan — and the mirror case, payload
    // gone but receipt lost, must let the next sweep finish the job
    let clock = SimClock::starting_at(START);
    let store = MemFs::shared(clock.clone());
    let config = parse_config(CONFIG).unwrap();
    let mut server = Server::new("b", config, clock.clone(), store.clone()).unwrap();
    server.deposit("f_0.csv", &payload(0)).unwrap();
    server.deposit("f_1.csv", &payload(1)).unwrap();
    let victim = server.receipts().all_live()[0].clone();
    store
        .remove(&format!("staging/{}", victim.staged_path))
        .unwrap();

    clock.advance(TimeSpan::from_secs(7_200));
    let n = server.expire().unwrap();
    assert_eq!(n, 2, "missing payload must not block expiration");
    assert_eq!(server.receipts().live_count(), 0);
    // the file that still had its payload was archived; the orphaned
    // receipt expired without one
    let archived = server.archiver().unwrap().archived_files().unwrap();
    assert_eq!(archived.len(), 1);
    assert_ne!(archived[0].id, victim.id);
}

/// Drive deposit → expire with a one-shot transient read fault at
/// `fault_op`, retrying expiration until it converges. Returns the
/// `archiver.skipped` counter. Panics if any file expires without its
/// payload reaching the archive.
fn run_read_fault(fault_op: u64) -> u64 {
    let ctx = format!("read_fault_op={fault_op}");
    let clock = SimClock::starting_at(START);
    let inner = MemFs::shared(clock.clone());
    let faulted: Arc<FaultStore> = Arc::new(FaultStore::with_read_fault(inner.clone(), fault_op));
    let config = parse_config(CONFIG).unwrap();
    let mut server = match Server::new(
        "b",
        config,
        clock.clone(),
        faulted.clone() as Arc<dyn FileStore>,
    ) {
        Ok(s) => s,
        // a transient read failure during recovery surfaces as an open
        // error — that is an operator retry, not a consistency bug
        Err(_) => return 0,
    };
    let mut ingested = Vec::new();
    for i in 0..3 {
        // a fault during ingest fails the deposit; the file simply stays
        // in the landing zone for a later rescan
        if server.deposit(&format!("f_{i}.csv"), &payload(i)).is_ok() {
            // the deposit may still be missing from the live set if the
            // fault hit mid-delivery; index what actually arrived below
        }
    }
    for rec in server.receipts().all_live() {
        ingested.push(rec.clone());
    }

    clock.advance(TimeSpan::from_secs(7_200));
    for _ in 0..3 {
        server
            .expire()
            .unwrap_or_else(|e| panic!("{ctx}: expire: {e}"));
        if server.receipts().live_count() == 0 {
            break;
        }
    }
    assert_eq!(
        server.receipts().live_count(),
        0,
        "{ctx}: expiration did not converge after retries"
    );

    // nothing may expire without its payload safely in the archive
    let arch = server.archiver().unwrap();
    for rec in &ingested {
        assert!(
            arch.fetch(&rec.staged_path).is_ok(),
            "{ctx}: file {} ({}) expired but its payload never reached the archive",
            rec.id,
            rec.name
        );
    }
    server
        .telemetry()
        .counter_value("archiver.skipped")
        .unwrap_or(0)
}

#[test]
fn read_fault_sweep_never_drops_payload_without_archiving() {
    // size the sweep: count the reads of an unfaulted run
    let reads = {
        let clock = SimClock::starting_at(START);
        let inner = MemFs::shared(clock.clone());
        let counting = Arc::new(FaultStore::counting(inner));
        let config = parse_config(CONFIG).unwrap();
        let mut server = Server::new(
            "b",
            config,
            clock.clone(),
            counting.clone() as Arc<dyn FileStore>,
        )
        .unwrap();
        for i in 0..3 {
            server.deposit(&format!("f_{i}.csv"), &payload(i)).unwrap();
        }
        clock.advance(TimeSpan::from_secs(7_200));
        server.expire().unwrap();
        counting.read_ops()
    };
    assert!(reads >= 6, "scenario reads too few files: {reads}");

    let mut skips = 0;
    for fault_op in 0..reads {
        skips += run_read_fault(fault_op);
    }
    // at least one fault index must have landed on the archive-read path
    // and been skipped-for-retry rather than silently dropped
    assert!(
        skips >= 1,
        "no read fault ever exercised the archive skip path"
    );
}
