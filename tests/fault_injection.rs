//! Workspace-level integration: reliable delivery under seeded fault
//! injection (paper §4.2, DESIGN.md "Failure model").
//!
//! The scenarios combine message drops, duplicates, a hard outage
//! window, and a server crash-restart, and assert the exactly-once
//! invariant: every classified file reaches every subscriber exactly
//! once, the receipt store agrees with the subscribers' own delivered
//! sets, and the whole run replays bit-for-bit from its seed.
//!
//! On failure the replay seed is part of the panic message (and the
//! property test prints `BISTRO_PROP_SEED=...`).

use bistro::base::prop::Runner;
use bistro::base::prop_assert;
use bistro::base::{Clock, SimClock, TimePoint, TimeSpan};
use bistro::config::parse_config;
use bistro::server::log::LogLevel;
use bistro::server::Server;
use bistro::transport::{
    FaultPlan, FaultSpec, LinkFlap, LinkSpec, RetryPolicy, SimNetwork, SubscriberClient,
};
use bistro::vfs::MemFs;
use std::collections::BTreeSet;
use std::sync::Arc;

const START: TimePoint = TimePoint::from_secs(1_285_372_800);

const CONFIG: &str = r#"
    feed F { pattern "f_%i.csv"; }
    subscriber alpha { endpoint "alpha"; subscribe F; delivery push; }
    subscriber beta  { endpoint "beta";  subscribe F; delivery push; }
"#;

fn retry_policy() -> RetryPolicy {
    RetryPolicy {
        base_timeout: TimeSpan::from_secs(5),
        backoff: 2,
        max_timeout: TimeSpan::from_secs(60),
        max_attempts: 12,
        jitter: 0.2,
    }
}

/// Everything observable about one faulty run, rendered to a string so
/// two runs can be compared bit-for-bit.
fn run_scenario(seed: u64, files: usize, with_crash: bool) -> String {
    let clock = SimClock::starting_at(START);
    let store = MemFs::shared(clock.clone());
    let net = Arc::new(SimNetwork::new(LinkSpec {
        bandwidth: 1_000_000,
        latency: TimeSpan::from_millis(10),
    }));
    // drops + duplicates on every link, plus a scheduled flap of the
    // server→alpha link early in the run
    net.install_fault_plan(FaultPlan {
        seed,
        default_faults: FaultSpec::lossy(0.25, 0.15),
        link_faults: Vec::new(),
        flaps: vec![LinkFlap {
            from: "b".to_string(),
            to: "alpha".to_string(),
            first_down: START + TimeSpan::from_secs(3),
            period: TimeSpan::from_secs(40),
            down_for: TimeSpan::from_secs(8),
            count: 2,
            jitter: TimeSpan::from_secs(2),
        }],
    });
    // and one hard outage window on the beta link
    net.add_outage(
        "b",
        "beta",
        START + TimeSpan::from_secs(10),
        START + TimeSpan::from_secs(20),
    );

    let config = parse_config(CONFIG).unwrap();
    let mut server = Some(
        Server::new("b", config.clone(), clock.clone(), store.clone())
            .unwrap()
            .with_network(net.clone())
            .with_reliable_delivery(retry_policy(), seed),
    );
    let mut alpha = SubscriberClient::new("alpha", "b");
    let mut beta = SubscriberClient::new("beta", "b");

    let total = (files * 2) as u64; // every file to both subscribers
    let mut crashed = false;
    for round in 0..600 {
        clock.advance(TimeSpan::from_secs(1));
        let now = clock.now();

        if round < files {
            server
                .as_mut()
                .unwrap()
                .deposit(&format!("f_{round}.csv"), b"payload-bytes")
                .unwrap();
        }

        // crash mid-flight: drop the server with unacked sends in the
        // tracker, reopen over the same store (receipts WAL replays),
        // and backfill everything the receipts still show as pending
        if with_crash && !crashed && round == 7 {
            crashed = true;
            drop(server.take());
            let mut fresh = Server::new("b", config.clone(), clock.clone(), store.clone())
                .unwrap()
                .with_network(net.clone())
                .with_reliable_delivery(retry_policy(), seed.wrapping_add(1));
            fresh.backfill_unacked().unwrap();
            server = Some(fresh);
        }

        alpha.poll_notifications(&net, now);
        beta.poll_notifications(&net, now);
        let srv = server.as_mut().unwrap();
        srv.poll_network().unwrap();
        srv.retry_tick().unwrap();

        if round > files && srv.receipts().delivery_count() == total {
            break;
        }
    }

    let srv = server.as_ref().unwrap();
    let delivered = |c: &SubscriberClient| -> Vec<u64> {
        let mut ids: Vec<u64> = c.delivered().iter().map(|(f, _, _)| f.raw()).collect();
        ids.sort_unstable();
        ids
    };
    format!(
        "delivered_alpha={:?} delivered_beta={:?} dups_alpha={} dups_beta={} \
         acks_alpha={} acks_beta={} receipts={} unacked={} counters={:?} \
         net_sent={} net_dropped={} net_duplicated={} warns={} alarms={} end={}",
        delivered(&alpha),
        delivered(&beta),
        alpha.duplicates_ignored(),
        beta.duplicates_ignored(),
        alpha.acks_sent(),
        beta.acks_sent(),
        srv.receipts().delivery_count(),
        srv.unacked_count(),
        srv.reliability_counters(),
        net.messages_sent(),
        net.messages_dropped(),
        net.messages_duplicated(),
        srv.event_log().count(LogLevel::Warn),
        srv.event_log().count(LogLevel::Alarm),
        clock.now(),
    )
}

/// Drive one simpler run and return what the invariant needs.
struct MiniOutcome {
    delivered_alpha: Vec<u64>,
    delivered_beta: Vec<u64>,
    receipts: u64,
    pending: usize,
}

fn run_mini(seed: u64, files: usize, drop_prob: f64, dup_prob: f64) -> MiniOutcome {
    let clock = SimClock::starting_at(START);
    let store = MemFs::shared(clock.clone());
    let net = Arc::new(SimNetwork::new(LinkSpec::default()));
    net.install_fault_plan(FaultPlan::uniform(
        seed,
        FaultSpec::lossy(drop_prob, dup_prob),
    ));

    let mut server = Server::new("b", parse_config(CONFIG).unwrap(), clock.clone(), store)
        .unwrap()
        .with_network(net.clone())
        .with_reliable_delivery(retry_policy(), seed);
    let mut alpha = SubscriberClient::new("alpha", "b");
    let mut beta = SubscriberClient::new("beta", "b");

    let total = (files * 2) as u64;
    for round in 0..900 {
        clock.advance(TimeSpan::from_secs(1));
        let now = clock.now();
        if round < files {
            server.deposit(&format!("f_{round}.csv"), b"data").unwrap();
        }
        alpha.poll_notifications(&net, now);
        beta.poll_notifications(&net, now);
        server.poll_network().unwrap();
        server.retry_tick().unwrap();
        if round > files && server.receipts().delivery_count() == total {
            break;
        }
    }

    let ids = |c: &SubscriberClient| -> Vec<u64> {
        let mut v: Vec<u64> = c.delivered().iter().map(|(f, _, _)| f.raw()).collect();
        v.sort_unstable();
        v
    };
    let feeds = vec!["F".to_string()];
    MiniOutcome {
        delivered_alpha: ids(&alpha),
        delivered_beta: ids(&beta),
        receipts: server.receipts().delivery_count(),
        pending: server.receipts().pending_for("alpha", &feeds).len()
            + server.receipts().pending_for("beta", &feeds).len(),
    }
}

/// A two-tier delivery tree under a lossy upstream→relay link: the hub
/// fans each file out *once* per group to the relay server, the relay
/// serves the members from its own pipeline (reliable, clean links),
/// and cumulative coverage reports flow back over the same lossy link.
/// Rendered to a digest string for bit-for-bit replay comparison.
fn run_relay_hop(seed: u64, files: usize) -> String {
    let clock = SimClock::starting_at(START);
    let net = Arc::new(SimNetwork::new(LinkSpec {
        bandwidth: 1_000_000,
        latency: TimeSpan::from_millis(10),
    }));
    // drops + duplicates on the hub↔relay hop only: group fanouts and
    // coverage reports both have to survive the bad link
    net.install_fault_plan(FaultPlan {
        seed,
        default_faults: FaultSpec::default(),
        link_faults: vec![
            (
                "hub".to_string(),
                "edge".to_string(),
                FaultSpec::lossy(0.3, 0.2),
            ),
            (
                "edge".to_string(),
                "hub".to_string(),
                FaultSpec::lossy(0.3, 0.2),
            ),
        ],
        flaps: Vec::new(),
    });

    let cfg_text = r#"
        feed F { pattern "f_%i.csv"; }
        subscriber m1 { endpoint "m1"; subscribe F; delivery push; }
        subscriber m2 { endpoint "m2"; subscribe F; delivery push; }
        subscriber m3 { endpoint "m3"; subscribe F; delivery push; }
        group EDGE { members m1, m2, m3; relay "edge"; }
    "#;
    let mut hub = Server::new(
        "hub",
        parse_config(cfg_text).unwrap(),
        clock.clone(),
        MemFs::shared(clock.clone()),
    )
    .unwrap()
    .with_network(net.clone())
    .with_reliable_delivery(retry_policy(), seed);
    // the edge's name matches the group's relay endpoint, so it skips
    // the plan and serves the members directly (reliable hop)
    let mut edge = Server::new(
        "edge",
        parse_config(cfg_text).unwrap(),
        clock.clone(),
        MemFs::shared(clock.clone()),
    )
    .unwrap()
    .with_network(net.clone())
    .with_reliable_delivery(retry_policy(), seed.wrapping_add(7));
    let mut members: Vec<SubscriberClient> = ["m1", "m2", "m3"]
        .iter()
        .map(|m| SubscriberClient::new(m, "edge"))
        .collect();

    for round in 0..600 {
        clock.advance(TimeSpan::from_secs(1));
        let now = clock.now();
        if round < files {
            hub.deposit(&format!("f_{round}.csv"), b"tree-bytes")
                .unwrap();
        }
        bistro::server::relay::pump(&net, &hub, &mut edge, now).unwrap();
        for m in &mut members {
            m.poll_notifications(&net, now);
        }
        edge.poll_network().unwrap();
        edge.retry_tick().unwrap();
        hub.poll_network().unwrap();
        hub.retry_tick().unwrap();

        if round > files
            && hub.group_outstanding() == 0
            && members.iter().all(|m| m.delivered().len() == files)
        {
            break;
        }
    }

    let delivered = |c: &SubscriberClient| -> Vec<u64> {
        let mut ids: Vec<u64> = c.delivered().iter().map(|(f, _, _)| f.raw()).collect();
        ids.sort_unstable();
        ids
    };
    format!(
        "m1={:?} m2={:?} m3={:?} dups={:?} outstanding={} group_counters={:?} \
         edge_receipts={} edge_deliveries={} net_sent={} net_dropped={} \
         net_duplicated={} hub_warns={} hub_alarms={} end={}",
        delivered(&members[0]),
        delivered(&members[1]),
        delivered(&members[2]),
        members
            .iter()
            .map(|m| m.duplicates_ignored())
            .collect::<Vec<_>>(),
        hub.group_outstanding(),
        hub.group_counters(),
        edge.receipts().live_count(),
        edge.receipts().delivery_count(),
        net.messages_sent(),
        net.messages_dropped(),
        net.messages_duplicated(),
        hub.event_log().count(LogLevel::Warn),
        hub.event_log().count(LogLevel::Alarm),
        clock.now(),
    )
}

#[test]
fn relay_hop_group_delivery_is_exactly_once_and_reproducible() {
    let seed = 0xB157_000Au64;
    let files = 8;
    let digest = run_relay_hop(seed, files);

    // exactly once at every member of the delivery tree, despite the
    // lossy hub↔relay hop: edge-local ids 1..=files, no gaps, no dups
    let want: Vec<u64> = (1..=files as u64).collect();
    for m in ["m1", "m2", "m3"] {
        assert!(
            digest.contains(&format!("{m}={want:?}")),
            "seed {seed:#x}: {m} missed or duplicated files: {digest}"
        );
    }
    // every fanout completed; the relay ingested each file exactly once
    assert!(
        digest.contains("outstanding=0"),
        "seed {seed:#x}: group fanouts left outstanding: {digest}"
    );
    assert!(
        digest.contains(&format!("edge_receipts={files} ")),
        "seed {seed:#x}: relay double-ingested: {digest}"
    );
    // the plan actually injected faults on the relay hop
    let dropped: u64 = digest
        .split("net_dropped=")
        .nth(1)
        .and_then(|s| s.split_whitespace().next())
        .and_then(|s| s.parse().ok())
        .unwrap();
    assert!(dropped > 0, "seed {seed:#x} injected no drops: {digest}");

    // bit-for-bit replay from the seed
    let again = run_relay_hop(seed, files);
    assert_eq!(digest, again, "seed {seed:#x} did not replay bit-for-bit");
}

#[test]
fn seeded_faulty_run_is_exactly_once_and_reproducible() {
    let seed = 0xB157_0001u64;
    let files = 12;
    let digest = run_scenario(seed, files, true);

    // exactly once to each subscriber: ids 1..=files, no gaps, no dups
    let want: Vec<u64> = (1..=files as u64).collect();
    assert!(
        digest.contains(&format!("delivered_alpha={want:?}")),
        "seed {seed:#x}: alpha missed or duplicated files: {digest}"
    );
    assert!(
        digest.contains(&format!("delivered_beta={want:?}")),
        "seed {seed:#x}: beta missed or duplicated files: {digest}"
    );
    assert!(
        digest.contains(&format!("receipts={} unacked=0", files * 2)),
        "seed {seed:#x}: receipts disagree or sends left unacked: {digest}"
    );
    // the plan actually injected faults
    let dropped: u64 = digest
        .split("net_dropped=")
        .nth(1)
        .and_then(|s| s.split_whitespace().next())
        .and_then(|s| s.parse().ok())
        .unwrap();
    assert!(dropped > 0, "seed {seed:#x} injected no drops: {digest}");

    // bit-for-bit replay from the seed, crash-restart and all
    let again = run_scenario(seed, files, true);
    assert_eq!(digest, again, "seed {seed:#x} did not replay bit-for-bit");
}

#[test]
fn crash_restart_backfills_unacked_sends() {
    let clock = SimClock::starting_at(START);
    let store = MemFs::shared(clock.clone());
    let net = Arc::new(SimNetwork::new(LinkSpec::default()));
    // every message vanishes: nothing can be acked before the crash
    net.install_fault_plan(FaultPlan::uniform(9, FaultSpec::lossy(1.0, 0.0)));

    let config = parse_config(CONFIG).unwrap();
    let mut server = Server::new("b", config.clone(), clock.clone(), store.clone())
        .unwrap()
        .with_network(net.clone())
        .with_reliable_delivery(retry_policy(), 9);
    for i in 0..3 {
        server.deposit(&format!("f_{i}.csv"), b"x").unwrap();
    }
    assert_eq!(
        server.unacked_count(),
        6,
        "3 files x 2 subscribers in flight"
    );
    assert_eq!(
        server.receipts().delivery_count(),
        0,
        "receipts must not be written before the ack"
    );

    // crash with everything unacked; the network heals
    drop(server);
    net.install_fault_plan(FaultPlan::uniform(9, FaultSpec::default()));

    let mut server = Server::new("b", config, clock.clone(), store)
        .unwrap()
        .with_network(net.clone())
        .with_reliable_delivery(retry_policy(), 10);
    assert_eq!(server.backfill_unacked().unwrap(), 6);

    let mut alpha = SubscriberClient::new("alpha", "b");
    let mut beta = SubscriberClient::new("beta", "b");
    clock.advance(TimeSpan::from_secs(2));
    alpha.poll_notifications(&net, clock.now());
    beta.poll_notifications(&net, clock.now());
    clock.advance(TimeSpan::from_secs(2));
    server.poll_network().unwrap();

    assert_eq!(server.receipts().delivery_count(), 6);
    assert_eq!(server.unacked_count(), 0);
    assert_eq!(alpha.delivered().len(), 3);
    assert_eq!(beta.delivered().len(), 3);
}

#[test]
fn exhausted_retries_raise_alarm_and_flag_subscriber_offline() {
    let clock = SimClock::starting_at(START);
    let store = MemFs::shared(clock.clone());
    let net = Arc::new(SimNetwork::new(LinkSpec::default()));
    net.install_fault_plan(FaultPlan {
        seed: 3,
        default_faults: FaultSpec::default(),
        link_faults: vec![(
            "b".to_string(),
            "alpha".to_string(),
            FaultSpec::lossy(1.0, 0.0),
        )],
        flaps: Vec::new(),
    });

    let policy = RetryPolicy {
        base_timeout: TimeSpan::from_secs(2),
        backoff: 2,
        max_timeout: TimeSpan::from_secs(8),
        max_attempts: 3,
        jitter: 0.0,
    };
    let mut server = Server::new("b", parse_config(CONFIG).unwrap(), clock.clone(), store)
        .unwrap()
        .with_network(net.clone())
        .with_reliable_delivery(policy, 3);
    let mut beta = SubscriberClient::new("beta", "b");

    server.deposit("f_0.csv", b"x").unwrap();
    for _ in 0..30 {
        clock.advance(TimeSpan::from_secs(1));
        beta.poll_notifications(&net, clock.now());
        server.poll_network().unwrap();
        server.retry_tick().unwrap();
    }

    // beta's copy went through; alpha's was abandoned with an alarm
    assert_eq!(beta.delivered().len(), 1);
    let (_acks, retries, gave_up) = server.reliability_counters();
    assert!(retries >= 2, "expected retransmissions, got {retries}");
    assert_eq!(gave_up, 1);
    assert_eq!(server.unacked_count(), 0);
    assert!(
        server.event_log().count(LogLevel::Warn) >= 2,
        "each retry logs a warning"
    );
    let alarms = server.event_log().alarms();
    assert!(
        alarms.iter().any(|e| e.message.contains("abandoned")),
        "no abandonment alarm in {alarms:?}"
    );
    // the failed subscriber is flagged offline: no further sends to it
    assert_eq!(server.deliver_pending_for("alpha").unwrap(), 0);
}

#[test]
fn telemetry_alarm_rule_fires_under_dead_link() {
    // Same dead-link shape as above, but driving Server::tick so the
    // telemetry alarm sweep runs: exhausting the retry budget must raise
    // the edge-triggered `retry-exhaustion` rule into the event log
    // exactly once, on top of the delivery path's own abandonment alarm.
    let clock = SimClock::starting_at(START);
    let store = MemFs::shared(clock.clone());
    let net = Arc::new(SimNetwork::new(LinkSpec::default()));
    net.install_fault_plan(FaultPlan {
        seed: 5,
        default_faults: FaultSpec::default(),
        link_faults: vec![(
            "b".to_string(),
            "alpha".to_string(),
            FaultSpec::lossy(1.0, 0.0),
        )],
        flaps: Vec::new(),
    });

    let policy = RetryPolicy {
        base_timeout: TimeSpan::from_secs(2),
        backoff: 2,
        max_timeout: TimeSpan::from_secs(8),
        max_attempts: 3,
        jitter: 0.0,
    };
    let mut server = Server::new("b", parse_config(CONFIG).unwrap(), clock.clone(), store)
        .unwrap()
        .with_network(net.clone())
        .with_reliable_delivery(policy, 5);
    let mut beta = SubscriberClient::new("beta", "b");

    server.deposit("f_0.csv", b"x").unwrap();
    for _ in 0..30 {
        clock.advance(TimeSpan::from_secs(1));
        beta.poll_notifications(&net, clock.now());
        server.poll_network().unwrap();
        server.retry_tick().unwrap();
        server.tick();
    }

    assert!(
        server
            .telemetry()
            .counter_value("reliable.exhausted")
            .unwrap()
            >= 1
    );
    let telemetry_alarms: Vec<_> = server
        .event_log()
        .alarms()
        .into_iter()
        .filter(|e| e.component == "telemetry")
        .collect();
    assert_eq!(
        telemetry_alarms.len(),
        1,
        "edge-triggered rule must fire exactly once: {telemetry_alarms:?}"
    );
    assert!(
        telemetry_alarms[0].message.contains("retry-exhaustion"),
        "{telemetry_alarms:?}"
    );
    assert!(
        telemetry_alarms[0].message.contains("reliable.exhausted"),
        "detail should name the tripped metric: {telemetry_alarms:?}"
    );
}

#[test]
fn prop_random_fault_plans_preserve_exactly_once() {
    Runner::new("fault_plans_exactly_once").cases(10).run(
        |rng| {
            (
                rng.gen_range(0u64..1 << 48),
                rng.gen_range(1usize..=6), // files
                rng.gen_range(0u64..=40),  // drop % of 100
                rng.gen_range(0u64..=30),  // dup % of 100
            )
        },
        |&(seed, files, drop_pct, dup_pct)| {
            let o = run_mini(seed, files, drop_pct as f64 / 100.0, dup_pct as f64 / 100.0);
            let want: Vec<u64> = (1..=files as u64).collect();
            prop_assert!(
                o.delivered_alpha == want,
                "alpha got {:?}, want {:?}",
                o.delivered_alpha,
                want
            );
            prop_assert!(
                o.delivered_beta == want,
                "beta got {:?}, want {:?}",
                o.delivered_beta,
                want
            );
            prop_assert!(
                o.receipts == (files * 2) as u64,
                "receipts {} != {}",
                o.receipts,
                files * 2
            );
            prop_assert!(o.pending == 0, "{} files still pending", o.pending);
            Ok(())
        },
    );
}

#[test]
fn receipts_agree_with_subscriber_sets() {
    let seed = 0xFEED_5EEDu64;
    let o = run_mini(seed, 8, 0.3, 0.2);
    let alpha: BTreeSet<u64> = o.delivered_alpha.iter().copied().collect();
    let beta: BTreeSet<u64> = o.delivered_beta.iter().copied().collect();
    assert_eq!(alpha, beta, "both subscribers see the same file set");
    assert_eq!(o.receipts as usize, alpha.len() + beta.len());
    assert_eq!(o.pending, 0);
}
