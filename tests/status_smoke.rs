//! End-to-end smoke test for `bistro status`: the binary must produce
//! well-formed, deterministic JSON containing the known metric keys the
//! CI gate greps for.

use bistro::telemetry::Json;
use std::process::Command;

fn run_status(args: &[&str]) -> String {
    let out = Command::new(env!("CARGO_BIN_EXE_bistro"))
        .args(args)
        .output()
        .expect("bistro binary runs");
    assert!(
        out.status.success(),
        "bistro {args:?} failed: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    String::from_utf8(out.stdout).expect("utf-8 output")
}

#[test]
fn status_json_is_wellformed_deterministic_and_has_known_keys() {
    let a = run_status(&["status", "--json", "--seed", "11"]);
    let b = run_status(&["status", "--json", "--seed", "11"]);
    assert_eq!(a, b, "same seed must render byte-identical snapshots");
    let g = run_status(&["status", "--json", "--seed", "11", "--group", "3"]);
    assert_eq!(a, g, "WAL group-commit size must not change the snapshot");

    let doc = Json::parse(a.trim()).expect("output parses as JSON");
    assert_eq!(doc.get("server").and_then(Json::as_str), Some("b"));
    let counters = doc
        .get("metrics")
        .and_then(|m| m.get("counters"))
        .expect("metrics.counters object");
    for key in [
        "delivery.receipts",
        "ingest.files",
        "reliable.attempts",
        "wal.appends",
        "vfs.writes",
    ] {
        assert!(
            counters.get(key).and_then(Json::as_num).is_some(),
            "missing counter {key} in {a}"
        );
    }
    assert!(
        doc.get("metrics")
            .and_then(|m| m.get("histograms"))
            .and_then(|h| h.get("wal.fsync_us"))
            .is_some(),
        "missing wal.fsync_us histogram in {a}"
    );
    // a different seed is a different faulty run
    let c = run_status(&["status", "--json", "--seed", "12"]);
    assert_ne!(a, c, "different seeds should diverge");
}

#[test]
fn status_text_mentions_counters_and_alarms() {
    let text = run_status(&["status", "--seed", "11"]);
    assert!(text.contains("server b @"), "{text}");
    assert!(text.contains("delivery.receipts"), "{text}");
    assert!(text.contains("alarm"), "{text}");
}
