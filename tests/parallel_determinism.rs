//! Property test for the parallel ingest determinism contract: for
//! random seeded file batches, `deposit_batch` with N workers produces
//! the same classifications, receipt sequence numbers, telemetry totals
//! and `status_json` bytes as with a single worker, for N ∈ {2, 4, 8}.

use bistro::base::prop::{self, Runner};
use bistro::base::{prop_assert_eq, SimClock, TimePoint, TimeSpan};
use bistro::config::parse_config;
use bistro::server::Server;
use bistro::vfs::MemFs;

const START: TimePoint = TimePoint::from_secs(1_285_372_800);

const CONFIG: &str = r#"
    feed SNMP/MEM { pattern "MEM_poller%i_%Y%m%d%H%M.csv"; }
    feed SNMP/CPU { pattern "CPU_poller%i_%Y%m%d%H%M.csv"; compress rle; }
    feed WILD     { pattern "*_%Y%m%d%H%M.csv"; }

    subscriber warehouse {
        endpoint "wh";
        subscribe SNMP;
        delivery push;
        batch count 3 window 10m;
        trigger remote "refresh %N n=%c";
    }
"#;

/// Run `rounds` of batch deposits with the given worker count and
/// return everything the determinism contract covers: the receipt
/// records (names, ids, feed classifications), the trigger log length,
/// and the full status_json rendering (telemetry totals included).
fn run(rounds: &[Vec<(String, Vec<u8>)>], workers: usize) -> (String, usize, String) {
    let clock = SimClock::starting_at(START);
    let store = MemFs::shared(clock.clone());
    let mut server = Server::new("b", parse_config(CONFIG).unwrap(), clock.clone(), store)
        .unwrap()
        .with_workers(workers);
    for batch in rounds {
        server.deposit_batch(batch.clone()).unwrap();
        clock.advance(TimeSpan::from_secs(30));
        server.tick();
    }
    let receipts: Vec<String> = server
        .receipts()
        .all_live()
        .iter()
        .map(|r| format!("{}#{}→{:?}", r.name, r.id.raw(), r.feeds))
        .collect();
    (
        receipts.join(";"),
        server.trigger_log().len(),
        server.status_json().render(),
    )
}

#[test]
fn deposit_batch_is_deterministic_across_worker_counts() {
    Runner::new("deposit_batch_is_deterministic_across_worker_counts")
        .cases(16)
        .run(
            |rng| {
                let rounds = rng.gen_range(1u64..4) as usize;
                (0..rounds)
                    .map(|_| {
                        let n = rng.gen_range(0u64..16) as usize;
                        (0..n)
                            .map(|_| {
                                let name = match rng.gen_range(0u32..4) {
                                    0 => format!(
                                        "MEM_poller{}_2010092504{:02}.csv",
                                        rng.gen_range(0u64..5),
                                        rng.gen_range(0u64..60)
                                    ),
                                    1 => format!(
                                        "CPU_poller{}_2010092504{:02}.csv",
                                        rng.gen_range(0u64..5),
                                        rng.gen_range(0u64..60)
                                    ),
                                    2 => format!(
                                        "{}_2010092504{:02}.csv",
                                        prop::string(rng, "a-z", 1..=6),
                                        rng.gen_range(0u64..60)
                                    ),
                                    // unknown names park in unknown/
                                    _ => format!("{}.dat", prop::string(rng, "a-z0-9", 1..=8)),
                                };
                                let payload = prop::string(rng, "a-z0-9,", 0..=64).into_bytes();
                                (name, payload)
                            })
                            .collect::<Vec<(String, Vec<u8>)>>()
                    })
                    .collect::<Vec<_>>()
            },
            |rounds| {
                let reference = run(rounds, 1);
                for workers in [2, 4, 8] {
                    let got = run(rounds, workers);
                    prop_assert_eq!(
                        &got.0,
                        &reference.0,
                        "receipts diverge at {} workers",
                        workers
                    );
                    prop_assert_eq!(
                        got.1,
                        reference.1,
                        "triggers diverge at {} workers",
                        workers
                    );
                    prop_assert_eq!(
                        &got.2,
                        &reference.2,
                        "status diverges at {} workers",
                        workers
                    );
                }
                Ok(())
            },
        );
}
