//! Property test for the parallel ingest determinism contract: for
//! random seeded file batches, `deposit_batch` with N workers and a
//! WAL group-commit size of G produces the same classifications,
//! receipt sequence numbers, raw WAL segment bytes, telemetry totals
//! and `status_json` bytes as one worker committing record-by-record,
//! for N ∈ {2, 4, 8} × G ∈ {1, 2, 7, 64} — and `deposit_pipelined`
//! (prepare/commit overlapped across threads) matches the sequential
//! `deposit_batch` loop byte for byte.

use bistro::base::prop::{self, Runner};
use bistro::base::{prop_assert_eq, SimClock, TimePoint, TimeSpan};
use bistro::config::parse_config;
use bistro::server::Server;
use bistro::vfs::{walk_files, MemFs};

const START: TimePoint = TimePoint::from_secs(1_285_372_800);

const CONFIG: &str = r#"
    feed SNMP/MEM { pattern "MEM_poller%i_%Y%m%d%H%M.csv"; }
    feed SNMP/CPU { pattern "CPU_poller%i_%Y%m%d%H%M.csv"; compress rle; }
    feed WILD     { pattern "*_%Y%m%d%H%M.csv"; }

    subscriber warehouse {
        endpoint "wh";
        subscribe SNMP;
        delivery push;
        batch count 3 window 10m;
        trigger remote "refresh %N n=%c";
    }
"#;

/// Hex dump of every WAL segment under `receipts/` — the physical
/// byte-identity surface of the group-commit contract.
fn wal_dump(server: &Server) -> String {
    let store = server.store();
    let mut out = String::new();
    for path in walk_files(store.as_ref(), "receipts").unwrap() {
        let data = store.read(&path).unwrap();
        out.push_str(&path);
        out.push(':');
        for b in data {
            out.push_str(&format!("{b:02x}"));
        }
        out.push(';');
    }
    out
}

/// Run `rounds` of batch deposits with the given worker count and
/// group-commit size and return everything the determinism contract
/// covers: the receipt records (names, ids, feed classifications), the
/// trigger log length, the full status_json rendering (telemetry totals
/// included) and the raw WAL segment bytes.
fn run(
    rounds: &[Vec<(String, Vec<u8>)>],
    workers: usize,
    group: usize,
) -> (String, usize, String, String) {
    let clock = SimClock::starting_at(START);
    let store = MemFs::shared(clock.clone());
    let mut server = Server::new("b", parse_config(CONFIG).unwrap(), clock.clone(), store)
        .unwrap()
        .with_workers(workers)
        .with_commit_group(group);
    for batch in rounds {
        server.deposit_batch(batch.clone()).unwrap();
        clock.advance(TimeSpan::from_secs(30));
        server.tick();
    }
    let receipts: Vec<String> = server
        .receipts()
        .all_live()
        .iter()
        .map(|r| format!("{}#{}→{:?}", r.name, r.id.raw(), r.feeds))
        .collect();
    let wal = wal_dump(&server);
    (
        receipts.join(";"),
        server.trigger_log().len(),
        server.status_json().render(),
        wal,
    )
}

#[test]
fn deposit_batch_is_deterministic_across_worker_counts() {
    Runner::new("deposit_batch_is_deterministic_across_worker_counts")
        .cases(16)
        .run(
            |rng| {
                let rounds = rng.gen_range(1u64..4) as usize;
                (0..rounds)
                    .map(|_| {
                        let n = rng.gen_range(0u64..16) as usize;
                        (0..n)
                            .map(|_| {
                                let name = match rng.gen_range(0u32..4) {
                                    0 => format!(
                                        "MEM_poller{}_2010092504{:02}.csv",
                                        rng.gen_range(0u64..5),
                                        rng.gen_range(0u64..60)
                                    ),
                                    1 => format!(
                                        "CPU_poller{}_2010092504{:02}.csv",
                                        rng.gen_range(0u64..5),
                                        rng.gen_range(0u64..60)
                                    ),
                                    2 => format!(
                                        "{}_2010092504{:02}.csv",
                                        prop::string(rng, "a-z", 1..=6),
                                        rng.gen_range(0u64..60)
                                    ),
                                    // unknown names park in unknown/
                                    _ => format!("{}.dat", prop::string(rng, "a-z0-9", 1..=8)),
                                };
                                let payload = prop::string(rng, "a-z0-9,", 0..=64).into_bytes();
                                (name, payload)
                            })
                            .collect::<Vec<(String, Vec<u8>)>>()
                    })
                    .collect::<Vec<_>>()
            },
            |rounds| {
                // reference: one worker, record-by-record WAL appends
                let reference = run(rounds, 1, 1);
                // sweep both axes plus combinations: any worker count ×
                // any group-commit size must reproduce the reference
                for (workers, group) in [
                    (2, 1),
                    (4, 1),
                    (8, 1),
                    (1, 2),
                    (1, 7),
                    (1, 64),
                    (4, 7),
                    (8, 64),
                ] {
                    let got = run(rounds, workers, group);
                    prop_assert_eq!(
                        &got.0,
                        &reference.0,
                        "receipts diverge at workers={} group={}",
                        workers,
                        group
                    );
                    prop_assert_eq!(
                        got.1,
                        reference.1,
                        "triggers diverge at workers={} group={}",
                        workers,
                        group
                    );
                    prop_assert_eq!(
                        &got.2,
                        &reference.2,
                        "status diverges at workers={} group={}",
                        workers,
                        group
                    );
                    prop_assert_eq!(
                        &got.3,
                        &reference.3,
                        "WAL bytes diverge at workers={} group={}",
                        workers,
                        group
                    );
                }
                Ok(())
            },
        );
}

/// Deposit the same batches through the two-stage pipelined path
/// (prepare thread overlapping the commit thread) and through a plain
/// sequential `deposit_batch` loop; everything observable — receipts,
/// triggers, status_json, raw WAL bytes — must match byte for byte,
/// for any worker count and group size.
#[test]
fn deposit_pipelined_matches_sequential_byte_for_byte() {
    let batches: Vec<Vec<(String, Vec<u8>)>> = (0..6u64)
        .map(|round| {
            (0..9u64)
                .map(|k| {
                    let name = match (round + k) % 3 {
                        0 => format!("MEM_poller{k}_2010092504{round:02}.csv"),
                        1 => format!("CPU_poller{k}_2010092504{round:02}.csv"),
                        _ => format!("stray_{round}_{k}.dat"),
                    };
                    (name, format!("payload-{round}-{k}").repeat(4).into_bytes())
                })
                .collect()
        })
        .collect();

    let drive =
        |pipelined: bool, workers: usize, group: usize| -> (String, usize, String, String) {
            let clock = SimClock::starting_at(START);
            let store = MemFs::shared(clock.clone());
            let mut server = Server::new("b", parse_config(CONFIG).unwrap(), clock.clone(), store)
                .unwrap()
                .with_workers(workers)
                .with_commit_group(group);
            if pipelined {
                server.deposit_pipelined(batches.clone()).unwrap();
            } else {
                for batch in &batches {
                    server.deposit_batch(batch.clone()).unwrap();
                }
            }
            clock.advance(TimeSpan::from_secs(30));
            server.tick();
            let receipts: Vec<String> = server
                .receipts()
                .all_live()
                .iter()
                .map(|r| format!("{}#{}→{:?}", r.name, r.id.raw(), r.feeds))
                .collect();
            let wal = wal_dump(&server);
            (
                receipts.join(";"),
                server.trigger_log().len(),
                server.status_json().render(),
                wal,
            )
        };

    let reference = drive(false, 1, 1);
    for (workers, group) in [(1, 1), (1, 64), (4, 1), (4, 7), (8, 64)] {
        let sequential = drive(false, workers, group);
        assert_eq!(
            sequential, reference,
            "sequential diverges at workers={workers} group={group}"
        );
        let pipelined = drive(true, workers, group);
        assert_eq!(
            pipelined, reference,
            "pipelined diverges at workers={workers} group={group}"
        );
    }
}
