#!/usr/bin/env bash
# Offline CI gate: the whole workspace must build, test, lint, and
# format-check without touching the network or a registry cache.
# Bistro has zero external dependencies by construction — this script
# is what enforces that invariant.
#
# Staged: `./ci.sh <stage>` runs one suite; `./ci.sh` (or `./ci.sh all`)
# runs every stage in order. The GitHub workflow calls the stages
# individually so each suite runs exactly once with its own visible
# step. Stages after `build` assume `./target/release` binaries exist.
set -euo pipefail
cd "$(dirname "$0")"

stage_build() {
  # --workspace: the root package does not depend on bistro-bench, and
  # the bench/fanout stages run ./target/release/exp_* binaries
  cargo build --release --offline --workspace
}

# Full workspace suite — includes the bench crate's experiment shape
# tests (e1..e11); nothing is exempted.
stage_test() {
  cargo test -q --offline --workspace
}

# Fault-injection suite, run explicitly and uncaptured so a failure
# surfaces its replay seed (scenario asserts embed `seed 0x...`; the
# property harness prints `BISTRO_PROP_SEED=...`).
stage_faults() {
  cargo test --offline --test fault_injection -- --nocapture
}

# Storage crash-point sweep: replay the full pipeline crashing at every
# mutating storage op — including the group-committed batch WAL append —
# reopen on the surviving bytes, and check the recovery invariants
# (store opens, no acked delivery forgotten, no dangling receipt, no
# FileId reuse, exactly-once after backfill). Uncaptured so a failure
# echoes its `seed=... crash_op=...` replay key.
stage_crash() {
  cargo test --offline --test crash_points -- --nocapture
}

# Distributed suite: the relay network plus the seeded multi-server
# failover scenario (kill + re-home + backfill, exactly-once, replayed
# bit-for-bit). Uncaptured so a failure echoes the replay seed the
# scenario prints (`[distributed] failover scenario seed=0x...`),
# mirroring the crash-sweep stage.
stage_distributed() {
  cargo test --offline --test distributed -- --nocapture
}

# Telemetry subsystem: its own suite plus a `bistro status --json` smoke
# check — two same-seed runs must render byte-identical, well-formed JSON
# carrying a known metric key.
stage_telemetry() {
  cargo test -q --offline -p bistro-telemetry
  cargo test -q --offline --test status_smoke
  local snap_a snap_b
  snap_a=$(./target/release/bistro status --json --seed 11)
  snap_b=$(./target/release/bistro status --json --seed 11)
  [ "$snap_a" = "$snap_b" ] || { echo "status --json is not deterministic" >&2; exit 1; }
  case "$snap_a" in
    '{'*'"delivery.receipts"'*'}') ;;
    *) echo "status --json missing delivery.receipts or malformed: $snap_a" >&2; exit 1 ;;
  esac
}

# Parallel-ingest determinism: neither the sharded classify/normalize
# pool nor the WAL group-commit size may leak schedule or batching into
# any observable output — the property test checks receipts, triggers,
# status and raw WAL bytes across worker counts × group sizes, and the
# CLI snapshot must be byte-identical across both knobs.
stage_parallel() {
  cargo test -q --offline --test parallel_determinism
  local snap_a snap_p snap_g
  snap_a=$(./target/release/bistro status --json --seed 11)
  snap_p=$(./target/release/bistro status --json --seed 11 --workers 4)
  [ "$snap_a" = "$snap_p" ] || { echo "status --json differs with --workers 4" >&2; exit 1; }
  snap_g=$(./target/release/bistro status --json --seed 11 --group 3)
  [ "$snap_a" = "$snap_g" ] || { echo "status --json differs with --group 3" >&2; exit 1; }
}

# Model-checking stage: bounded exhaustive exploration of reliable
# delivery, crash-restart and failover interleavings (DESIGN.md §11).
# Uncaptured so the `[mc] scenario=… states=… elapsed_ms=…` counters
# land in the build log. Runs the scenario file in release mode with a
# raised state cap: the same scenarios that cover ~20k distinct states
# under a plain `cargo test` exhaust >100k here in similar wall time.
stage_mc() {
  cargo test -q --offline -p bistro-mc -- --nocapture
  BISTRO_MC_STATES=60000 \
    cargo test -q --release --offline --test model_check -- --nocapture
}

stage_lint() {
  cargo clippy --offline --all-targets -- -D warnings
  cargo fmt --check
}

# Perf-regression gate: re-measure the server_ingest_100_feeds medians
# in quick mode and compare against the *committed* BENCH_throughput.json
# (exp_e11 rewrites the file in place, so snapshot the baseline first).
# Fails only on a >2x median regression — CI runners are noisy; the gate
# catches order-of-magnitude mistakes, not drift. Leaves the fresh
# BENCH_*.json in the tree for the workflow to upload as artifacts.
stage_bench() {
  local baseline=target/ci-bench-baseline.json
  git show HEAD:BENCH_throughput.json >"$baseline" 2>/dev/null \
    || cp BENCH_throughput.json "$baseline"
  ./target/release/exp_e11 --quick --gate "$baseline"
}

# Delivery-tree fanout: the group-delivery unit/integration suites, the
# delivery-index equivalence property suite, then the E14
# shape-and-perf experiment in quick mode gated the same way as
# stage_bench — exp_e14 splices its fanout_group_delivery and
# fanout_deposit_cost groups into BENCH_throughput.json, so the
# committed file is the baseline and the overlap medians
# (deposit_g100_m100, deposit_s10000) are compared at the same >2x
# tolerance; exp_e14 additionally fails itself if the deposit-cost
# sweep is not flat in subscriber count.
stage_fanout() {
  cargo test -q --offline -p bistro-core --lib relay
  cargo test -q --offline -p bistro-core --lib index
  cargo test -q --offline -p bistro-core --test server_integration group
  cargo test -q --offline --test delivery_index
  cargo test --offline --test fault_injection relay_hop -- --nocapture
  local baseline=target/ci-fanout-baseline.json
  git show HEAD:BENCH_throughput.json >"$baseline" 2>/dev/null \
    || cp BENCH_throughput.json "$baseline"
  ./target/release/exp_e14 --quick --gate "$baseline"
}

stage_all() {
  stage_build
  stage_test
  stage_faults
  stage_crash
  stage_distributed
  stage_telemetry
  stage_parallel
  stage_mc
  stage_lint
  stage_bench
  stage_fanout
}

stage="${1:-all}"
case "$stage" in
  build|test|faults|crash|distributed|telemetry|parallel|mc|lint|bench|fanout|all)
    "stage_$stage"
    ;;
  *)
    echo "usage: ./ci.sh [build|test|faults|crash|distributed|telemetry|parallel|mc|lint|bench|fanout|all]" >&2
    exit 2
    ;;
esac
