#!/usr/bin/env bash
# Offline CI gate: the whole workspace must build, test, lint, and
# format-check without touching the network or a registry cache.
# Bistro has zero external dependencies by construction — this script
# is what enforces that invariant.
set -euo pipefail
cd "$(dirname "$0")"

cargo build --release --offline
# Full workspace suite — includes the bench crate's experiment shape
# tests (e1..e11); nothing is exempted.
cargo test -q --offline --workspace

# Fault-injection suite, run explicitly and uncaptured so a failure
# surfaces its replay seed (scenario asserts embed `seed 0x...`; the
# property harness prints `BISTRO_PROP_SEED=...`).
cargo test --offline --test fault_injection -- --nocapture

# Storage crash-point sweep: replay the full pipeline crashing at every
# mutating storage op, reopen on the surviving bytes, and check the
# recovery invariants (store opens, no acked delivery forgotten, no
# dangling receipt, no FileId reuse, exactly-once after backfill).
# Uncaptured so a failure echoes its `seed=... crash_op=...` replay key.
cargo test --offline --test crash_points -- --nocapture

# Telemetry subsystem: its own suite plus a `bistro status --json` smoke
# check — two same-seed runs must render byte-identical, well-formed JSON
# carrying a known metric key.
cargo test -q --offline -p bistro-telemetry
cargo test -q --offline --test status_smoke
snap_a=$(./target/release/bistro status --json --seed 11)
snap_b=$(./target/release/bistro status --json --seed 11)
[ "$snap_a" = "$snap_b" ] || { echo "status --json is not deterministic" >&2; exit 1; }

# Parallel-ingest determinism: the sharded classify/normalize pool must
# not leak schedule into any observable output — the property test
# checks receipts/triggers/status across worker counts, and the CLI
# snapshot must be byte-identical between 1 and 4 workers.
cargo test -q --offline --test parallel_determinism
snap_p=$(./target/release/bistro status --json --seed 11 --workers 4)
[ "$snap_a" = "$snap_p" ] || { echo "status --json differs with --workers 4" >&2; exit 1; }
case "$snap_a" in
  '{'*'"delivery.receipts"'*'}') ;;
  *) echo "status --json missing delivery.receipts or malformed: $snap_a" >&2; exit 1 ;;
esac

cargo clippy --offline --all-targets -- -D warnings
cargo fmt --check
