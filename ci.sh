#!/usr/bin/env bash
# Offline CI gate: the whole workspace must build, test, lint, and
# format-check without touching the network or a registry cache.
# Bistro has zero external dependencies by construction — this script
# is what enforces that invariant.
set -euo pipefail
cd "$(dirname "$0")"

cargo build --release --offline
cargo test -q --offline

# Fault-injection suite, run explicitly and uncaptured so a failure
# surfaces its replay seed (scenario asserts embed `seed 0x...`; the
# property harness prints `BISTRO_PROP_SEED=...`).
cargo test --offline --test fault_injection -- --nocapture

cargo clippy --offline --all-targets -- -D warnings
cargo fmt --check
