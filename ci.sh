#!/usr/bin/env bash
# Offline CI gate: the whole workspace must build, test, lint, and
# format-check without touching the network or a registry cache.
# Bistro has zero external dependencies by construction — this script
# is what enforces that invariant.
set -euo pipefail
cd "$(dirname "$0")"

cargo build --release --offline
cargo test -q --offline

# Fault-injection suite, run explicitly and uncaptured so a failure
# surfaces its replay seed (scenario asserts embed `seed 0x...`; the
# property harness prints `BISTRO_PROP_SEED=...`).
cargo test --offline --test fault_injection -- --nocapture

# Telemetry subsystem: its own suite plus a `bistro status --json` smoke
# check — two same-seed runs must render byte-identical, well-formed JSON
# carrying a known metric key.
cargo test -q --offline -p bistro-telemetry
cargo test -q --offline --test status_smoke
snap_a=$(./target/release/bistro status --json --seed 11)
snap_b=$(./target/release/bistro status --json --seed 11)
[ "$snap_a" = "$snap_b" ] || { echo "status --json is not deterministic" >&2; exit 1; }
case "$snap_a" in
  '{'*'"delivery.receipts"'*'}') ;;
  *) echo "status --json missing delivery.receipts or malformed: $snap_a" >&2; exit 1 ;;
esac

cargo clippy --offline --all-targets -- -D warnings
cargo fmt --check
