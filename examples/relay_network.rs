//! A distributed feed delivery network (paper §3, Figure 1): a hub
//! Bistro server near the data sources relays feeds over slow WAN links
//! to two regional edge servers, each of which serves local analysts.
//!
//! ```sh
//! cargo run --example relay_network
//! ```

use bistro::base::{Clock, SimClock, TimePoint, TimeSpan};
use bistro::config::parse_config;
use bistro::server as core;
use bistro::server::Server;
use bistro::transport::{LinkSpec, SimNetwork};
use bistro::vfs::MemFs;
use std::sync::Arc;

fn edge_config(local_subscriber: &str) -> String {
    format!(
        r#"
        feed SNMP/BPS {{ pattern "BPS_poller%i_%Y%m%d%H%M.csv"; }}
        feed SNMP/GPS {{ pattern "GPS_truck%i_%Y%m%d%H%M.csv"; }}
        subscriber {local_subscriber} {{
            endpoint "{local_subscriber}";
            subscribe SNMP;
            delivery push;
            deadline 2m;
        }}
        "#
    )
}

fn main() {
    let clock = SimClock::starting_at(TimePoint::from_secs(1_285_372_800));
    let net = Arc::new(SimNetwork::new(LinkSpec {
        bandwidth: 100_000_000,
        latency: TimeSpan::from_millis(2),
    }));
    // slow WAN pipes hub → edges (the "low-bandwidth network pipes" §3)
    net.set_link(
        "hub",
        "edge_atlanta",
        LinkSpec {
            bandwidth: 2_000_000,
            latency: TimeSpan::from_millis(40),
        },
    );
    net.set_link(
        "hub",
        "edge_dallas",
        LinkSpec {
            bandwidth: 1_000_000,
            latency: TimeSpan::from_millis(60),
        },
    );

    let hub_cfg = parse_config(
        r#"
        feed SNMP/BPS { pattern "BPS_poller%i_%Y%m%d%H%M.csv"; }
        feed SNMP/GPS { pattern "GPS_truck%i_%Y%m%d%H%M.csv"; }
        subscriber edge_atlanta { endpoint "edge_atlanta"; subscribe SNMP/BPS; delivery push; }
        subscriber edge_dallas  { endpoint "edge_dallas";  subscribe SNMP;     delivery push; }
        "#,
    )
    .unwrap();
    let mut hub = Server::new("hub", hub_cfg, clock.clone(), MemFs::shared(clock.clone()))
        .unwrap()
        .with_network(net.clone());

    let mut atlanta = Server::new(
        "edge_atlanta",
        parse_config(&edge_config("marketing")).unwrap(),
        clock.clone(),
        MemFs::shared(clock.clone()),
    )
    .unwrap()
    .with_network(net.clone());

    let mut dallas = Server::new(
        "edge_dallas",
        parse_config(&edge_config("operations")).unwrap(),
        clock.clone(),
        MemFs::shared(clock.clone()),
    )
    .unwrap()
    .with_network(net.clone());

    // sources deposit a polling round at the hub
    let t0 = clock.now();
    for p in 1..=4 {
        hub.deposit(
            &format!("BPS_poller{p}_201009250000.csv"),
            &vec![b'x'; 200_000],
        )
        .unwrap();
        hub.deposit(
            &format!("GPS_truck{p}_201009250000.csv"),
            &vec![b'y'; 50_000],
        )
        .unwrap();
    }
    println!("hub ingested {} files", hub.stats().files_ingested);

    // let the WAN drain, then pump each relay hop
    clock.advance(TimeSpan::from_secs(5));
    let now = clock.now();
    let n_atl = core::relay::pump(&net, &hub, &mut atlanta, now).unwrap();
    let n_dal = core::relay::pump(&net, &hub, &mut dallas, now).unwrap();
    println!("relayed: {n_atl} files → Atlanta (BPS only), {n_dal} files → Dallas (all)");

    clock.advance(TimeSpan::from_secs(5));
    let mkt = net.recv_ready("marketing", clock.now());
    let ops = net.recv_ready("operations", clock.now());
    println!("Atlanta marketing received {} deliveries", mkt.len());
    println!("Dallas operations received {} deliveries", ops.len());

    let worst = mkt
        .iter()
        .chain(ops.iter())
        .map(|d| d.at.since(t0))
        .max()
        .unwrap_or(TimeSpan::ZERO);
    println!(
        "\nworst source→analyst propagation across two hops: {worst} (sub-minute: {})",
        worst < TimeSpan::from_secs(60)
    );
    println!("total WAN bytes: {}", net.bytes_sent());
}
