//! The paper's §1 motivating scenario: an SNMP measurement
//! infrastructure feeding a streaming data warehouse.
//!
//! A fleet of pollers emits BPS/PPS/CPU/MEMORY files every 5 minutes;
//! Bistro classifies them into the SNMP feed hierarchy, compresses CPU
//! data, delivers to two analyst groups with different interests, fires
//! hybrid count+window batch triggers for the warehouse, monitors feed
//! progress, and expires old data into the archiver.
//!
//! ```sh
//! cargo run --example snmp_pipeline
//! ```

use bistro::base::{Clock, SimClock, TimePoint, TimeSpan};
use bistro::config::parse_config;
use bistro::server::Server;
use bistro::simnet::{generate, payload::payload_for, FleetConfig, SubfeedSpec};
use bistro::vfs::MemFs;

fn main() {
    let config = parse_config(
        r#"
        server { retention 1d; archive on; }

        feed SNMP/BPS    { pattern "BPS_poller%i_%Y%m%d%H%M.csv"; }
        feed SNMP/PPS    { pattern "PPS_poller%i_%Y%m%d%H%M.csv"; }
        feed SNMP/CPU    { pattern "CPU_poller%i_%Y%m%d%H%M.csv"; compress lzss; }
        feed SNMP/MEMORY { pattern "MEMORY_poller%i_%Y%m%d%H%M.csv"; normalize "%Y/%m/%d/%H/%f"; }

        group BILLING_SET { members SNMP/BPS; }

        # billing cares only about BPS, batched per polling round
        subscriber billing {
            endpoint "billing";
            subscribe BILLING_SET;
            delivery push;
            deadline 60s;
            batch count 4 window 5m;
            trigger remote "bps_rollup %N batch=%b files=%c";
        }
        # capacity planning takes the whole hierarchy
        subscriber capacity {
            endpoint "capacity";
            subscribe SNMP;
            delivery push;
            deadline 5m;
        }
        "#,
    )
    .unwrap();

    let clock = SimClock::starting_at(TimePoint::from_secs(1_285_372_800));
    let store = MemFs::shared(clock.clone());
    let mut server = Server::new("bistro", config, clock.clone(), store.clone()).unwrap();

    // expect 4 pollers per 5-minute interval on each feed
    for feed in ["SNMP/BPS", "SNMP/PPS", "SNMP/CPU", "SNMP/MEMORY"] {
        server.monitor_feed(feed, TimeSpan::from_mins(5), 4);
    }

    // 4 pollers × 4 subfeeds × 2 hours, with occasional skipped intervals
    let mut fleet = FleetConfig::standard(
        4,
        vec![
            SubfeedSpec::standard("BPS"),
            SubfeedSpec::standard("PPS"),
            SubfeedSpec::standard("CPU"),
            SubfeedSpec::standard("MEMORY"),
        ],
        TimeSpan::from_hours(2),
    );
    fleet.skip_prob = 0.02;
    let files = generate(&fleet);
    println!("generated {} files from the poller fleet", files.len());

    let mut ticks = 0;
    for f in &files {
        clock.set(f.deposit_time);
        server.deposit(&f.name, &payload_for(f)).unwrap();
        // housekeeping tick once a minute of simulated time
        if clock.now().as_secs() / 60 > ticks {
            ticks = clock.now().as_secs() / 60;
            server.tick();
        }
    }
    server.tick();

    println!("\n--- pipeline results ---");
    println!("ingested          : {}", server.stats().files_ingested);
    println!("deliveries        : {}", server.stats().deliveries);
    println!("bytes delivered   : {}", server.stats().bytes_delivered);
    println!(
        "billing triggers  : {}",
        server
            .trigger_log()
            .entries()
            .iter()
            .filter(|e| e.subscriber == "billing")
            .count()
    );

    println!("\n--- progress alarms (skipped intervals detected) ---");
    for alarm in server.event_log().alarms().iter().take(5) {
        println!("[{}] {}", alarm.at, alarm.message);
    }
    println!("({} alarms total)", server.event_log().alarms().len());

    // roll time forward two days and expire into the archive
    clock.advance(TimeSpan::from_days(2));
    let expired = server.expire().unwrap();
    println!("\nexpired {expired} files beyond the 1d retention window");
    println!(
        "archived files  : {}",
        server.archiver().unwrap().archived_files().unwrap().len()
    );
    println!("live files      : {}", server.receipts().live_count());

    // compression ablation: CPU staged files are sealed containers
    let cpu_files = server.receipts().files_in_feed("SNMP/CPU");
    println!(
        "\n(SNMP/CPU is stored compressed; {} files remain live)",
        cpu_files.len()
    );
}
