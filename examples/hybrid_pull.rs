//! Hybrid push-pull delivery (paper §4.1): the server pushes lightweight
//! availability notifications; the application pulls the payloads "at
//! the time of their choosing" — here, in one nightly batch.
//!
//! ```sh
//! cargo run --example hybrid_pull
//! ```

use bistro::base::{Clock, SimClock, TimePoint, TimeSpan};
use bistro::config::parse_config;
use bistro::server::Server;
use bistro::transport::{LinkSpec, SimNetwork, SubscriberClient};
use bistro::vfs::MemFs;
use std::sync::Arc;

fn main() {
    let config = parse_config(
        r#"
        feed REPORTS { pattern "report_%a_%Y%m%d.csv"; }
        subscriber nightly_etl {
            endpoint "etl";
            subscribe REPORTS;
            delivery notify;          # hybrid: notification only
            deadline 12h;
        }
        "#,
    )
    .unwrap();

    let clock = SimClock::starting_at(TimePoint::from_secs(1_285_372_800));
    let net = Arc::new(SimNetwork::new(LinkSpec {
        bandwidth: 20_000_000, // 20 MB/s WAN
        latency: TimeSpan::from_millis(25),
    }));
    let store = MemFs::shared(clock.clone());
    let mut server = Server::new("bistro", config, clock.clone(), store)
        .unwrap()
        .with_network(net.clone());

    let mut client = SubscriberClient::new("etl", "bistro");

    // reports trickle in through the business day
    for (hour, region) in [(9, "east"), (11, "west"), (14, "north"), (16, "south")] {
        clock.set(TimePoint::from_secs(1_285_372_800) + TimeSpan::from_hours(hour));
        server
            .deposit(
                &format!("report_{region}_20100925.csv"),
                &vec![b'r'; 2_000_000],
            )
            .unwrap();
        // the client hears about each one almost immediately…
        let n = client.poll_notifications(&net, clock.now() + TimeSpan::from_secs(1));
        println!(
            "{}: {region} report available (+{n} notification, {} pending)",
            clock.now(),
            client.pending().len()
        );
    }

    // …but only pulls at 02:00, when the warehouse is quiet
    clock.set(TimePoint::from_secs(1_285_372_800) + TimeSpan::from_hours(26));
    println!(
        "\n02:00 — nightly ETL pulls {} files:",
        client.pending().len()
    );
    let completions = client.fetch_all(&net, clock.now());
    for (p, done) in client.fetched() {
        println!("  fetched {} ({} bytes) at {done}", p.staged_path, p.size);
    }
    let last = completions.iter().max().unwrap();
    println!(
        "\nall payloads on hand {} after the pull began — notifications cost\n\
         {} wire bytes during the day; payload bytes moved only when asked",
        last.since(clock.now()),
        4 * 70 // approx notification wire size
    );
}
