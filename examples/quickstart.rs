//! Quickstart: define a feed, start a server, push files, watch them
//! reach a subscriber.
//!
//! ```sh
//! cargo run --example quickstart
//! ```

use bistro::base::{Clock, SimClock, TimePoint};
use bistro::config::parse_config;
use bistro::server::Server;
use bistro::vfs::MemFs;

fn main() {
    // 1. Write a Bistro configuration: one feed, one subscriber.
    let config = parse_config(
        r#"
        server { retention 7d; }

        feed SNMP/MEMORY {
            pattern "MEMORY_poller%i_%Y%m%d.gz";
            normalize "%Y/%m/%d/%f";         # daily staging directories
            description "router memory utilization";
        }

        subscriber warehouse {
            endpoint "warehouse-host";
            subscribe SNMP/MEMORY;
            delivery push;
            deadline 60s;
            trigger remote "load_partition %N %f";
        }
        "#,
    )
    .expect("valid configuration");

    // 2. Start a server on an in-memory store with a simulated clock.
    let clock = SimClock::starting_at(TimePoint::from_secs(1_285_372_800));
    let store = MemFs::shared(clock.clone());
    let mut server =
        Server::new("bistro", config, clock.clone(), store.clone()).expect("server starts");

    // 3. Sources deposit files into the landing zone (with notification).
    for poller in 1..=3 {
        let name = format!("MEMORY_poller{poller}_20100925.gz");
        server
            .deposit(&name, format!("data from poller {poller}").as_bytes())
            .unwrap();
        println!("deposited {name}");
    }
    // one file that matches no feed
    server.deposit("mystery_file.tmp", b"???").unwrap();

    // 4. Inspect the results.
    println!("\n--- server state at {} ---", clock.now());
    println!("files ingested : {}", server.stats().files_ingested);
    println!("unknown files  : {}", server.stats().files_unknown);
    println!("deliveries     : {}", server.stats().deliveries);
    println!(
        "staging example: staging/SNMP/MEMORY/2010/09/25/MEMORY_poller1_20100925.gz exists = {}",
        bistro::vfs::FileStore::exists(
            store.as_ref(),
            "staging/SNMP/MEMORY/2010/09/25/MEMORY_poller1_20100925.gz"
        )
    );

    println!("\n--- trigger invocations ---");
    for inv in server.trigger_log().entries() {
        println!("[{}] {} ← {}", inv.at, inv.subscriber, inv.command);
    }

    println!("\n--- analyzer: what was that mystery file? ---");
    for feed in server.discovery_report(1) {
        println!(
            "suggested feed: {} (support {}, {})",
            feed.pattern, feed.support, feed.description
        );
    }

    // 5. Reliability: everything is in the receipt database.
    println!(
        "\nreceipts: {} live files, {} deliveries recorded",
        server.receipts().live_count(),
        server.receipts().delivery_count()
    );
}
