//! The feed analyzer in action (paper §5): discover an undocumented
//! aggregate feed, survive a naming-convention change, and close the
//! loop with a subscriber-approved redefinition.
//!
//! ```sh
//! cargo run --example feed_discovery
//! ```

use bistro::base::{Clock, SimClock, TimePoint, TimeSpan};
use bistro::config::parse_config;
use bistro::server::Server;
use bistro::simnet::{generate, Evolution, FleetConfig, NameStyle, SubfeedSpec};
use bistro::vfs::MemFs;

fn main() {
    // The server only knows about MEMORY. Everything else an aggregate
    // source sends will land in the unknown-feed stream.
    let config = parse_config(
        r#"
        feed SNMP/MEMORY { pattern "MEMORY_poller%i_%Y%m%d%H%M.csv"; }
        subscriber wh { endpoint "wh"; subscribe SNMP/MEMORY; }
        "#,
    )
    .unwrap();
    let clock = SimClock::starting_at(TimePoint::from_secs(1_285_372_800));
    let store = MemFs::shared(clock.clone());
    let mut server = Server::new("bistro", config, clock.clone(), store).unwrap();

    // An aggregate source: MEMORY (known) plus four undocumented
    // subfeeds in different naming styles, from 3 pollers.
    let fleet = FleetConfig::standard(
        3,
        vec![
            SubfeedSpec::standard("MEMORY"),
            SubfeedSpec::standard("BPS"),
            SubfeedSpec {
                name: "CPU".to_string(),
                style: NameStyle::CompactHourMin,
                ext: "csv.gz".to_string(),
                period: TimeSpan::from_mins(5),
                size_range: (1_000, 2_000),
            },
            SubfeedSpec {
                name: "LINKLOSS".to_string(),
                style: NameStyle::Daily,
                ext: "gz".to_string(),
                period: TimeSpan::from_hours(1),
                size_range: (1_000, 2_000),
            },
            SubfeedSpec {
                name: "router_a".to_string(),
                style: NameStyle::SeparatedHour,
                ext: "csv".to_string(),
                period: TimeSpan::from_hours(1),
                size_range: (1_000, 2_000),
            },
        ],
        TimeSpan::from_hours(3),
    );
    for f in generate(&fleet) {
        clock.set(f.deposit_time);
        server.deposit(&f.name, b"data").unwrap();
    }

    let unknown_pct = 100.0 * server.stats().files_unknown as f64
        / (server.stats().files_ingested + server.stats().files_unknown) as f64;
    println!(
        "{} files ingested, {} ({unknown_pct:.0}%) matched no feed",
        server.stats().files_ingested,
        server.stats().files_unknown
    );

    // §5.1 — new feed discovery over the unknown stream
    println!("\n--- suggested new feed definitions ---");
    for feed in server.discovery_report(3) {
        println!(
            "  {}   support={} period={} sources={}",
            feed.pattern,
            feed.support,
            feed.period
                .map(|p| p.to_string())
                .unwrap_or_else(|| "?".to_string()),
            feed.sources
                .map(|s| s.to_string())
                .unwrap_or_else(|| "?".to_string()),
        );
        println!("      {}", feed.description);
    }

    // §2.1.3.1 / §5.2 — the source renames poller → Poller mid-stream
    println!("\n--- feed evolution: poller word changes to 'Poller' ---");
    let mut drifting = FleetConfig::standard(
        3,
        vec![SubfeedSpec::standard("MEMORY")],
        TimeSpan::from_hours(2),
    );
    drifting.start = clock.now();
    drifting.evolution = vec![Evolution::RenamePollerWord {
        at: drifting.start + TimeSpan::from_hours(1),
        to: "Poller".to_string(),
    }];
    for f in generate(&drifting) {
        clock.set(f.deposit_time);
        server.deposit(&f.name, b"data").unwrap();
    }

    println!("false-negative warnings (one per drifted pattern, not per file):");
    let warnings = server.fn_warnings();
    for w in &warnings {
        println!(
            "  feed {}: {} files match suggested pattern {} (similarity {:.2})",
            w.feed, w.file_count, w.suggested_pattern, w.similarity
        );
    }

    // the subscriber approves the top suggestion
    if let Some(w) = warnings.iter().find(|w| w.feed == "SNMP/MEMORY") {
        let mut feed = server.config().feed("SNMP/MEMORY").unwrap().clone();
        feed.patterns.push(w.suggested_pattern.clone());
        server.redefine_feed(feed).unwrap();
        println!(
            "\nafter approving the revised definition: {} live files, {} still unknown on disk",
            server.receipts().live_count(),
            bistro::vfs::walk_files(server.store().as_ref(), "unknown")
                .unwrap()
                .len()
        );
    }
}
