//! The paper's opening example (§1): a shipping company's data feeds.
//!
//! Four source feeds — package drop-offs from shipping centers, barcode
//! scans from trucks/warehouses, GPS readings from delivery trucks, and
//! electronic delivery signatures — flow into Bistro. Three analyst
//! groups subscribe to different subsets; the signatures feed drives
//! real-time delivery alerts via a per-file trigger.
//!
//! ```sh
//! cargo run --example shipping
//! ```

use bistro::base::{Clock, Rng, SimClock, TimePoint, TimeSpan};
use bistro::config::parse_config;
use bistro::server::Server;
use bistro::vfs::MemFs;

fn main() {
    let config = parse_config(
        r#"
        server { retention 30d; }

        feed PKG/DROPOFF   { pattern "dropoff_center%i_%Y%m%d%H.csv"; }
        feed PKG/BARCODE   { pattern "scan_%a_%i_%Y%m%d%H%M.log"; }
        feed PKG/GPS       { pattern "gps_truck%i_%Y%m%d%H%M.csv"; }
        feed PKG/SIGNATURE { pattern "sig_%Y%m%d%H%M%S_%i.xml"; }

        # Atlanta marketing: drop-off data only
        subscriber marketing_atlanta {
            endpoint "atlanta";
            subscribe PKG/DROPOFF;
            delivery push;
            deadline 10m;
        }
        # Dallas operations: barcode scans + truck GPS
        subscriber operations_dallas {
            endpoint "dallas";
            subscribe PKG/BARCODE, PKG/GPS;
            delivery push;
            deadline 2m;
        }
        # corporate warehouse: everything, batched hourly
        subscriber corporate_warehouse {
            endpoint "corp";
            subscribe PKG;
            delivery push;
            deadline 30m;
            batch window 1h;
            trigger remote "refresh_partitions %N n=%c";
        }
        # real-time delivery alerts: per-file trigger on signatures
        subscriber delivery_alerts {
            endpoint "alerts";
            subscribe PKG/SIGNATURE;
            delivery notify;
            deadline 5s;
            trigger local "send_customer_alert %f";
        }
        "#,
    )
    .unwrap();

    let clock = SimClock::starting_at(TimePoint::from_secs(1_285_372_800));
    let store = MemFs::shared(clock.clone());
    let mut server = Server::new("bistro", config, clock.clone(), store).unwrap();

    // a simulated business day
    let mut rng = Rng::seed_from_u64(7);
    let day = clock.now().to_calendar();
    let mut deposited = 0u32;
    for hour in 8..18 {
        // drop-off files per center, hourly
        for center in 1..=5 {
            server
                .deposit(
                    &format!(
                        "dropoff_center{center}_{:04}{:02}{:02}{hour:02}.csv",
                        day.year, day.month, day.day
                    ),
                    b"pkg,weight,dest\n",
                )
                .unwrap();
            deposited += 1;
        }
        for minute in [0, 15, 30, 45] {
            clock.set(
                TimePoint::from_secs(1_285_372_800)
                    + TimeSpan::from_hours(hour as u64)
                    + TimeSpan::from_mins(minute),
            );
            // barcode scans from trucks and warehouses
            for site in ["truck", "warehouse"] {
                server
                    .deposit(
                        &format!(
                            "scan_{site}_{}_{:04}{:02}{:02}{hour:02}{minute:02}.log",
                            rng.gen_range(1..20),
                            day.year,
                            day.month,
                            day.day
                        ),
                        b"barcode scan data",
                    )
                    .unwrap();
                deposited += 1;
            }
            // GPS pings
            for truck in 1..=3 {
                server
                    .deposit(
                        &format!(
                            "gps_truck{truck}_{:04}{:02}{:02}{hour:02}{minute:02}.csv",
                            day.year, day.month, day.day
                        ),
                        b"lat,lon",
                    )
                    .unwrap();
                deposited += 1;
            }
            // occasional delivery signature → real-time alert
            if rng.gen_bool(0.5) {
                server
                    .deposit(
                        &format!(
                            "sig_{:04}{:02}{:02}{hour:02}{minute:02}00_{}.xml",
                            day.year,
                            day.month,
                            day.day,
                            rng.gen_range(10_000..99_999)
                        ),
                        b"<signature/>",
                    )
                    .unwrap();
                deposited += 1;
            }
        }
        server.tick();
    }
    clock.set(TimePoint::from_secs(1_285_372_800) + TimeSpan::from_hours(20));
    server.tick();

    println!(
        "business day complete: {deposited} files deposited, {} unknown",
        server.stats().files_unknown
    );
    println!("\nper-subscriber deliveries:");
    for sub in [
        "marketing_atlanta",
        "operations_dallas",
        "corporate_warehouse",
        "delivery_alerts",
    ] {
        let n = server
            .trigger_log()
            .entries()
            .iter()
            .filter(|e| e.subscriber == sub)
            .count();
        let lat = server
            .stats()
            .latency_summary(sub)
            .map(|(mean, _, max)| format!("mean {mean}, max {max}"))
            .unwrap_or_else(|| "n/a".to_string());
        println!("  {sub:22} triggers={n:4}  latency: {lat}");
    }

    let alerts = server
        .trigger_log()
        .entries()
        .iter()
        .filter(|e| e.subscriber == "delivery_alerts")
        .count();
    println!("\n{alerts} real-time customer delivery alerts fired");
    println!(
        "corporate warehouse hourly batches: {}",
        server
            .trigger_log()
            .entries()
            .iter()
            .filter(|e| e.subscriber == "corporate_warehouse")
            .count()
    );
}
